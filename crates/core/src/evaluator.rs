//! The Evaluator module (§3.2.1): ROC AUC and Average Precision for link
//! prediction / node classification, plus the weighted multi-class metrics
//! of Appendix G (accuracy, weighted precision/recall/F1).

/// ROC AUC and Average Precision from one shared stable sort.
///
/// Both metrics rank the same scores, so the evaluator pays for a single
/// descending stable sort and walks it once: tied blocks feed the AUC
/// midranks (a descending block `[i..=j]` has ascending midrank
/// `n − (i+j)/2`), while the positive hits inside the walk accumulate
/// precision@k for AP. Returns `(auc, ap)` with the usual degenerate-case
/// conventions: AUC is 0.5 when either class is empty, AP is 0.0 with no
/// positives.
///
/// **NaN policy**: scores must be finite — a NaN score is a model bug, and
/// debug builds assert it loudly. Release builds do not pay for the scan;
/// they instead sort with [`f32::total_cmp`], a *total* order that places
/// each NaN bit pattern at a fixed position (positive NaN above `+inf`,
/// negative NaN below `-inf`), so the sort — and hence AUC/AP — is a pure
/// function of the score multiset rather than of its input permutation.
/// Before this fix the comparator was `partial_cmp(..).unwrap_or(Equal)`,
/// which is non-transitive in the presence of NaN and made the metrics
/// input-order-dependent.
pub fn auc_ap(labels: &[f32], scores: &[f32]) -> (f64, f64) {
    assert_eq!(labels.len(), scores.len(), "auc_ap: length mismatch");
    debug_assert!(
        scores.iter().all(|s| s.is_finite()),
        "auc_ap: non-finite score (NaN/inf) — upstream model bug"
    );
    let n = labels.len();
    let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
    let n_neg = n - n_pos;

    // Descending by score; stable so ties keep input order (AP's tie
    // convention), with midranks making AUC tie-order independent.
    // `total_cmp` keeps the comparator total even on non-finite input.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

    let mut rank_sum_pos = 0.0f64;
    let mut hits = 0usize;
    let mut sum_prec = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let midrank = n as f64 - (i + j) as f64 / 2.0;
        for (offset, &ix) in idx[i..=j].iter().enumerate() {
            if labels[ix] > 0.5 {
                rank_sum_pos += midrank;
                hits += 1;
                sum_prec += hits as f64 / (i + offset + 1) as f64;
            }
        }
        i = j + 1;
    }

    let auc = if n_pos == 0 || n_neg == 0 {
        0.5 // undefined; convention: chance level
    } else {
        let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
        u / (n_pos as f64 * n_neg as f64)
    };
    let ap = if n_pos == 0 {
        0.0
    } else {
        sum_prec / n_pos as f64
    };
    (auc, ap)
}

/// Both metrics for the common link-prediction layout: positive scores vs
/// negative scores as two separate slices.
pub fn auc_ap_pos_neg(pos: &[f32], neg: &[f32]) -> (f64, f64) {
    let mut labels = vec![1.0f32; pos.len()];
    labels.extend(std::iter::repeat_n(0.0, neg.len()));
    let mut scores = pos.to_vec();
    scores.extend_from_slice(neg);
    auc_ap(&labels, &scores)
}

/// ROC AUC via the rank statistic (Mann–Whitney U), with midrank tie
/// handling. `labels[i]` is 1.0 for positive, 0.0 for negative.
pub fn roc_auc(labels: &[f32], scores: &[f32]) -> f64 {
    auc_ap(labels, scores).0
}

/// AUC for the positive/negative slice layout.
pub fn roc_auc_pos_neg(pos: &[f32], neg: &[f32]) -> f64 {
    auc_ap_pos_neg(pos, neg).0
}

/// Average precision: area under the precision-recall curve computed as the
/// mean of precision@k over positive hits (sklearn's step definition).
pub fn average_precision(labels: &[f32], scores: &[f32]) -> f64 {
    auc_ap(labels, scores).1
}

/// AP for the positive/negative slice layout.
pub fn average_precision_pos_neg(pos: &[f32], neg: &[f32]) -> f64 {
    auc_ap_pos_neg(pos, neg).1
}

/// Multi-class classification metrics with support-weighted averaging
/// (Appendix G formulas).
#[derive(Clone, Copy, Debug, Default)]
pub struct MultiClassMetrics {
    pub accuracy: f64,
    pub precision_weighted: f64,
    pub recall_weighted: f64,
    pub f1_weighted: f64,
}

impl benchtemp_util::ToJson for MultiClassMetrics {
    fn to_json(&self) -> benchtemp_util::Json {
        benchtemp_util::json!({
            "accuracy": self.accuracy,
            "precision_weighted": self.precision_weighted,
            "recall_weighted": self.recall_weighted,
            "f1_weighted": self.f1_weighted,
        })
    }
}

/// Compute Appendix-G metrics from predicted and true class ids.
pub fn multiclass_metrics(
    predicted: &[usize],
    truth: &[usize],
    num_classes: usize,
) -> MultiClassMetrics {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "multiclass_metrics: length mismatch"
    );
    let n = truth.len().max(1) as f64;
    let mut confusion = vec![0usize; num_classes * num_classes]; // [truth][pred]
    for (&p, &t) in predicted.iter().zip(truth) {
        confusion[t * num_classes + p] += 1;
    }
    let correct: usize = (0..num_classes)
        .map(|c| confusion[c * num_classes + c])
        .sum();
    let mut prec_w = 0.0;
    let mut rec_w = 0.0;
    let mut f1_w = 0.0;
    for c in 0..num_classes {
        let support: usize = (0..num_classes)
            .map(|p| confusion[c * num_classes + p])
            .sum();
        if support == 0 {
            continue;
        }
        let tp = confusion[c * num_classes + c] as f64;
        let pred_c: usize = (0..num_classes)
            .map(|t| confusion[t * num_classes + c])
            .sum();
        let precision = if pred_c > 0 { tp / pred_c as f64 } else { 0.0 };
        let recall = tp / support as f64;
        // sklearn semantics: F1 is computed per class, then support-weighted
        // — NOT the harmonic mean of the weighted precision and recall (the
        // two disagree whenever per-class precision/recall are imbalanced).
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        prec_w += support as f64 * precision;
        rec_w += support as f64 * recall;
        f1_w += support as f64 * f1;
    }
    let precision_weighted = prec_w / n;
    let recall_weighted = rec_w / n;
    let f1_weighted = f1_w / n;
    MultiClassMetrics {
        accuracy: correct as f64 / n,
        precision_weighted,
        recall_weighted,
        f1_weighted,
    }
}

/// Mean and (population) standard deviation over seed runs — the ±std the
/// paper reports under its 3-run protocol.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_auc_one() {
        let auc = roc_auc(&[1.0, 1.0, 0.0, 0.0], &[0.9, 0.8, 0.2, 0.1]);
        assert!((auc - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_scores_give_auc_zero() {
        let auc = roc_auc(&[1.0, 1.0, 0.0, 0.0], &[0.1, 0.2, 0.8, 0.9]);
        assert!(auc.abs() < 1e-9);
    }

    #[test]
    fn all_tied_scores_give_half() {
        let auc = roc_auc(&[1.0, 0.0, 1.0, 0.0], &[0.5, 0.5, 0.5, 0.5]);
        assert!((auc - 0.5).abs() < 1e-9);
    }

    #[test]
    fn auc_matches_hand_computed_example() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}. Pairs won: (0.8>0.6),
        // (0.8>0.2), (0.4<0.6 → 0), (0.4>0.2) = 3/4.
        let auc = roc_auc_pos_neg(&[0.8, 0.4], &[0.6, 0.2]);
        assert!((auc - 0.75).abs() < 1e-9);
    }

    #[test]
    fn auc_handles_ties_with_midrank() {
        // pos {0.5}, neg {0.5}: one tied pair counts 0.5 → AUC 0.5.
        let auc = roc_auc_pos_neg(&[0.5], &[0.5]);
        assert!((auc - 0.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_single_class_is_half() {
        assert_eq!(roc_auc(&[1.0, 1.0], &[0.1, 0.9]), 0.5);
        assert_eq!(roc_auc(&[0.0, 0.0], &[0.1, 0.9]), 0.5);
    }

    #[test]
    fn ap_matches_hand_computed_example() {
        // Descending: 0.9(+), 0.8(−), 0.7(+), 0.6(−).
        // precision@1 = 1, precision@3 = 2/3 → AP = (1 + 2/3)/2 = 5/6.
        let ap = average_precision(&[1.0, 0.0, 1.0, 0.0], &[0.9, 0.8, 0.7, 0.6]);
        assert!((ap - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn ap_perfect_ranking_is_one() {
        let ap = average_precision_pos_neg(&[0.9, 0.8], &[0.2, 0.1]);
        assert!((ap - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_invariant_under_monotone_transform() {
        let labels = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let scores = [0.9f32, 0.3, 0.6, 0.5, 0.7, 0.1];
        let transformed: Vec<f32> = scores.iter().map(|&s| (3.0 * s).exp()).collect();
        assert!((roc_auc(&labels, &scores) - roc_auc(&labels, &transformed)).abs() < 1e-9);
    }

    #[test]
    fn multiclass_perfect_prediction() {
        let m = multiclass_metrics(&[0, 1, 2, 1], &[0, 1, 2, 1], 3);
        assert_eq!(m.accuracy, 1.0);
        assert!((m.f1_weighted - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multiclass_matches_hand_computed_weighted_metrics() {
        // truth: [0,0,1,1], pred: [0,1,1,1].
        // class 0: support 2, tp 1, pred_0 = 1 → prec 1.0, rec 0.5, f1 2/3
        // class 1: support 2, tp 2, pred_1 = 3 → prec 2/3, rec 1.0, f1 0.8
        // weighted prec = (2*1 + 2*2/3)/4 = 5/6; weighted rec = (1 + 2)/4 = 0.75
        // weighted f1 = (2*(2/3) + 2*0.8)/4 = 11/15 ≈ 0.73333 (sklearn)
        let m = multiclass_metrics(&[0, 1, 1, 1], &[0, 0, 1, 1], 2);
        assert!((m.accuracy - 0.75).abs() < 1e-9);
        assert!((m.precision_weighted - 5.0 / 6.0).abs() < 1e-9);
        assert!((m.recall_weighted - 0.75).abs() < 1e-9);
        assert!((m.f1_weighted - 11.0 / 15.0).abs() < 1e-9);
        // This is exactly a case where the old formula (harmonic mean of the
        // weighted precision and recall) disagrees: it gave 15/19 ≈ 0.78947.
        let old: f64 = 2.0 * (5.0 / 6.0) * 0.75 / (5.0 / 6.0 + 0.75);
        assert!((old - 15.0 / 19.0).abs() < 1e-9);
        assert!((m.f1_weighted - old).abs() > 0.05);
    }

    #[test]
    fn weighted_f1_is_support_weighted_mean_of_per_class_f1() {
        // Three classes with very different precision/recall balance:
        // truth: [0,0,0,1,2,2], pred: [0,1,2,1,2,0].
        // class 0: support 3, tp 1, pred_0 = 2 → prec 0.5, rec 1/3, f1 0.4
        // class 1: support 1, tp 1, pred_1 = 2 → prec 0.5, rec 1.0, f1 2/3
        // class 2: support 2, tp 1, pred_2 = 2 → prec 0.5, rec 0.5, f1 0.5
        // weighted f1 = (3*0.4 + 1*2/3 + 2*0.5)/6 = (1.2 + 2/3 + 1)/6
        let m = multiclass_metrics(&[0, 1, 2, 1, 2, 0], &[0, 0, 0, 1, 2, 2], 3);
        let expect = (3.0 * 0.4 + 2.0 / 3.0 + 2.0 * 0.5) / 6.0;
        assert!(
            (m.f1_weighted - expect).abs() < 1e-9,
            "f1 {} vs {expect}",
            m.f1_weighted
        );
        // The harmonic-mean-of-weighted-averages formula lands elsewhere.
        let harmonic = 2.0 * m.precision_weighted * m.recall_weighted
            / (m.precision_weighted + m.recall_weighted);
        assert!((m.f1_weighted - harmonic).abs() > 1e-3);
    }

    /// Regression (debug builds): a NaN score is a model bug and must be
    /// reported at the metric boundary, not silently folded into a
    /// non-total comparator.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite score")]
    fn nan_score_asserts_in_debug() {
        let _ = auc_ap(&[1.0, 0.0], &[f32::NAN, 0.5]);
    }

    /// Regression (release builds): with the old
    /// `partial_cmp(..).unwrap_or(Equal)` comparator, a NaN score made the
    /// sort order — and the resulting AUC/AP — depend on the input
    /// permutation. `total_cmp` places NaN deterministically, so every
    /// permutation of the same multiset must yield identical metrics.
    #[cfg(not(debug_assertions))]
    #[test]
    fn nan_scores_are_permutation_invariant_in_release() {
        let labels = [1.0f32, 0.0, 1.0, 0.0, 1.0, 0.0];
        let scores = [0.9f32, f32::NAN, 0.6, 0.5, 0.2, 0.1];
        let base = auc_ap(&labels, &scores);
        // Walk a handful of distinct permutations.
        let perms: [[usize; 6]; 4] = [
            [5, 4, 3, 2, 1, 0],
            [1, 4, 0, 2, 5, 3],
            [4, 1, 5, 0, 3, 2],
            [2, 0, 4, 5, 3, 1],
        ];
        for perm in perms {
            let l: Vec<f32> = perm.iter().map(|&i| labels[i]).collect();
            let s: Vec<f32> = perm.iter().map(|&i| scores[i]).collect();
            let got = auc_ap(&l, &s);
            assert_eq!(base.0.to_bits(), got.0.to_bits(), "AUC varies with order");
            assert_eq!(base.1.to_bits(), got.1.to_bits(), "AP varies with order");
        }
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}
