//! The EdgeSampler module (§3.2.1): seeded negative-edge sampling for the
//! self-supervised link-prediction task, plus the Appendix-J *historical*
//! and *inductive* negative-sampling strategies.
//!
//! Per Appendix B, validation/test samplers run under fixed seeds so results
//! are reproducible across runs; [`EdgeSampler::reset`] restores the stream.

use benchtemp_graph::temporal_graph::{Interaction, TemporalGraph};
use benchtemp_tensor::init::{self, SeededRng};

/// Negative-sampling strategy (Fig. 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NegativeStrategy {
    /// Uniform destination among valid endpoints (the standard sampler).
    Random,
    /// Destinations of edges observed during training but absent at the
    /// current step (Appendix J, "sampling negative edges in E_train").
    Historical,
    /// Destinations of edges in E_all that were never observed in training
    /// (Appendix J, "inductive negative sampling").
    Inductive,
}

/// Valid destination range for negatives: items for bipartite graphs, all
/// nodes otherwise. Shared by [`EdgeSampler`] and the filtered-negative
/// ranking builder so both draw from the identical candidate universe.
pub fn destination_range(graph: &TemporalGraph) -> (usize, usize) {
    if graph.bipartite {
        (graph.num_users, graph.num_nodes)
    } else {
        (0, graph.num_nodes)
    }
}

/// Candidate destination pool for a strategy: empty for Random (the whole
/// destination range is the pool), distinct training destinations for
/// Historical, destinations of `E_all \ E_train` for Inductive. Sorted and
/// deduplicated, so pool indices are deterministic.
pub fn candidate_pool(
    graph: &TemporalGraph,
    train: &[Interaction],
    strategy: NegativeStrategy,
) -> Vec<usize> {
    match strategy {
        NegativeStrategy::Random => Vec::new(),
        NegativeStrategy::Historical => {
            // Distinct destinations seen in training edges.
            let mut v: Vec<usize> = train.iter().map(|e| e.dst).collect();
            v.sort_unstable();
            v.dedup();
            v
        }
        NegativeStrategy::Inductive => {
            // Destinations of edges in E_all \ E_train.
            let train_edges: std::collections::HashSet<(usize, usize)> =
                train.iter().map(|e| (e.src, e.dst)).collect();
            let mut v: Vec<usize> = graph
                .events
                .iter()
                .filter(|e| !train_edges.contains(&(e.src, e.dst)))
                .map(|e| e.dst)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        }
    }
}

/// Seeded negative-edge sampler over one dataset split.
pub struct EdgeSampler {
    seed: u64,
    rng: SeededRng,
    strategy: NegativeStrategy,
    /// Valid destination range: items for bipartite graphs, all nodes else.
    dst_lo: usize,
    dst_hi: usize,
    /// Candidate destination pool for Historical / Inductive strategies.
    pool: Vec<usize>,
}

impl EdgeSampler {
    /// Build a sampler. `train` is the training event set (needed by the
    /// Historical/Inductive pools; pass the full training split).
    pub fn new(
        graph: &TemporalGraph,
        train: &[Interaction],
        strategy: NegativeStrategy,
        seed: u64,
    ) -> Self {
        let (dst_lo, dst_hi) = destination_range(graph);
        let pool = candidate_pool(graph, train, strategy);
        EdgeSampler {
            seed,
            rng: init::rng(seed),
            strategy,
            dst_lo,
            dst_hi,
            pool,
        }
    }

    /// Restore the RNG stream to its initial state (fixed-seed evaluation).
    pub fn reset(&mut self) {
        self.rng = init::rng(self.seed);
    }

    pub fn strategy(&self) -> NegativeStrategy {
        self.strategy
    }

    /// Sample one negative destination for a positive edge; never returns
    /// the true destination (when more than one candidate exists).
    pub fn sample_dst(&mut self, positive: &Interaction) -> usize {
        for _ in 0..32 {
            let cand = match self.strategy {
                NegativeStrategy::Random => self.rng.gen_range(self.dst_lo..self.dst_hi),
                NegativeStrategy::Historical | NegativeStrategy::Inductive => {
                    if self.pool.is_empty() {
                        self.rng.gen_range(self.dst_lo..self.dst_hi)
                    } else {
                        self.pool[self.rng.gen_range(0..self.pool.len())]
                    }
                }
            };
            if cand != positive.dst {
                return cand;
            }
        }
        // Pathological pool (single candidate == positive): fall back to the
        // adjacent id, staying inside `[dst_lo, dst_hi)`. A plain
        // `rem_euclid(dst_hi)` could wrap below `dst_lo` and hand a
        // bipartite job a *user* node as a negative destination.
        let next = positive.dst + 1;
        if next >= self.dst_lo && next < self.dst_hi {
            next
        } else {
            self.dst_lo
        }
    }

    /// Sample one negative destination per positive edge in the batch.
    pub fn sample_batch(&mut self, batch: &[Interaction]) -> Vec<usize> {
        benchtemp_obs::counters::NEGATIVES_SAMPLED.add(batch.len() as u64);
        batch.iter().map(|e| self.sample_dst(e)).collect()
    }

    /// Heap bytes held (efficiency accounting: the pools are what make the
    /// appendix strategies cost memory).
    pub fn heap_bytes(&self) -> usize {
        self.pool.capacity() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchtemp_graph::generators::GeneratorConfig;
    use benchtemp_graph::TemporalGraph;

    fn graph() -> TemporalGraph {
        GeneratorConfig::small("sampler", 31).generate()
    }

    #[test]
    fn random_respects_bipartite_destination_range() {
        let g = graph();
        let mut s = EdgeSampler::new(&g, &g.events, NegativeStrategy::Random, 1);
        let negs = s.sample_batch(&g.events[..200]);
        assert!(negs.iter().all(|&d| d >= g.num_users && d < g.num_nodes));
    }

    #[test]
    fn never_returns_the_positive_destination() {
        let g = graph();
        let mut s = EdgeSampler::new(&g, &g.events, NegativeStrategy::Random, 2);
        for ev in &g.events[..300] {
            assert_ne!(s.sample_dst(ev), ev.dst);
        }
    }

    #[test]
    fn fixed_seed_reproducible_after_reset() {
        let g = graph();
        let mut s = EdgeSampler::new(&g, &g.events, NegativeStrategy::Random, 3);
        let a = s.sample_batch(&g.events[..50]);
        s.reset();
        let b = s.sample_batch(&g.events[..50]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let g = graph();
        let mut s1 = EdgeSampler::new(&g, &g.events, NegativeStrategy::Random, 4);
        let mut s2 = EdgeSampler::new(&g, &g.events, NegativeStrategy::Random, 5);
        assert_ne!(
            s1.sample_batch(&g.events[..50]),
            s2.sample_batch(&g.events[..50])
        );
    }

    #[test]
    fn historical_draws_from_training_destinations() {
        let g = graph();
        let train = &g.events[..g.num_events() / 2];
        let train_dsts: std::collections::HashSet<usize> = train.iter().map(|e| e.dst).collect();
        let mut s = EdgeSampler::new(&g, train, NegativeStrategy::Historical, 6);
        let negs = s.sample_batch(&g.events[500..700]);
        assert!(negs.iter().all(|d| train_dsts.contains(d)));
    }

    #[test]
    fn inductive_draws_from_unobserved_edges() {
        let g = graph();
        let train = &g.events[..g.num_events() / 2];
        let train_edges: std::collections::HashSet<(usize, usize)> =
            train.iter().map(|e| (e.src, e.dst)).collect();
        let valid: std::collections::HashSet<usize> = g
            .events
            .iter()
            .filter(|e| !train_edges.contains(&(e.src, e.dst)))
            .map(|e| e.dst)
            .collect();
        let mut s = EdgeSampler::new(&g, train, NegativeStrategy::Inductive, 7);
        let negs = s.sample_batch(&g.events[500..700]);
        assert!(negs.iter().all(|d| valid.contains(d)));
    }

    #[test]
    fn pathological_pool_fallback_stays_in_item_range() {
        use benchtemp_tensor::Matrix;
        // Bipartite graph: users 0..3, items 3..5. Every training edge hits
        // item 4 (the last id), so the Historical pool is the single
        // candidate [4] — all 32 draws collide and the fallback fires.
        let events: Vec<Interaction> = (0..6)
            .map(|i| Interaction {
                src: i % 3,
                dst: 4,
                t: i as f64,
                feat_idx: 0,
            })
            .collect();
        let g = TemporalGraph {
            name: "bipartite-degenerate".into(),
            bipartite: true,
            num_nodes: 5,
            num_users: 3,
            events,
            edge_features: Matrix::zeros(1, 4),
            node_features: Matrix::zeros(5, 4),
            labels: None,
        };
        g.validate().unwrap();
        let mut s = EdgeSampler::new(&g, &g.events, NegativeStrategy::Historical, 9);
        for ev in g.events.clone() {
            let neg = s.sample_dst(&ev);
            // The old `(dst + 1).rem_euclid(dst_hi)` fallback returned 0
            // here — a *user* node. Negatives must stay in the item range.
            assert!(
                neg >= g.num_users && neg < g.num_nodes,
                "negative {neg} is outside the item range [{}, {})",
                g.num_users,
                g.num_nodes
            );
            assert_ne!(neg, ev.dst);
        }
    }

    #[test]
    fn empty_pool_falls_back_to_random() {
        let g = graph();
        // Train on everything → E_all \ E_train has no edges.
        let mut s = EdgeSampler::new(&g, &g.events, NegativeStrategy::Inductive, 8);
        if s.heap_bytes() == 0 {
            let negs = s.sample_batch(&g.events[..20]);
            assert_eq!(negs.len(), 20);
        }
    }
}
