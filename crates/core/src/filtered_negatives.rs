//! Filtered negative candidate sets for ranking evaluation (DESIGN.md §14).
//!
//! TGB-style MRR/Hits@K evaluation ranks each positive edge against K
//! negative destinations. The candidate sets are *filtered* — a sampled
//! destination that forms a true edge with the query's source at the
//! query's exact timestamp is a collision, not a negative, and is rejected
//! — and *precomputed once per split*, so every model ranks against the
//! identical candidates and results are comparable across the zoo.
//!
//! Determinism: each query draws from its own RNG stream seeded by a pure
//! function of `(builder seed, query index, src, dst, t)` — the same
//! per-root stream-seed pattern the neighbor sampler uses — so the sets
//! are bit-identical at any `BENCHTEMP_THREADS` and across processes. The
//! [`FilteredNegativeSet::digest`] FNV-1a hash pins this in tests and in
//! the kernel bench.

use benchtemp_graph::temporal_graph::{Interaction, TemporalGraph};
use benchtemp_tensor::init;

use crate::sampler::{candidate_pool, destination_range, NegativeStrategy};

/// Precomputed K-negative candidate sets for one event stream.
#[derive(Clone, Debug)]
pub struct FilteredNegativeSet {
    /// Negatives per query.
    pub k: usize,
    /// Number of queries (events) the set covers.
    n: usize,
    /// Row-major candidate ids: `candidates[q * k + j]` is the j-th
    /// negative destination of query `q`.
    candidates: Vec<usize>,
}

/// SplitMix64 finalizer — the per-query seed mixer. Pure function of its
/// inputs, so candidate sets never depend on iteration order or thread
/// count.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn query_seed(seed: u64, q: usize, ev: &Interaction) -> u64 {
    let mut s = mix(seed ^ 0xf117_e4ed_5e75_0001);
    s = mix(s ^ q as u64);
    s = mix(s ^ ev.src as u64);
    s = mix(s ^ ev.dst as u64);
    mix(s ^ ev.t.to_bits())
}

/// Sorted index of true edges keyed by `(src, t)` — the collision filter.
/// A sorted Vec + binary search keeps lookups deterministic and cheap
/// without hashing in the build loop.
struct TrueEdgeIndex {
    /// Sorted `(src, t_bits, dst)` triples over the whole graph.
    edges: Vec<(usize, u64, usize)>,
}

impl TrueEdgeIndex {
    fn build(graph: &TemporalGraph) -> Self {
        let mut edges: Vec<(usize, u64, usize)> = graph
            .events
            .iter()
            .map(|e| (e.src, e.t.to_bits(), e.dst))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        TrueEdgeIndex { edges }
    }

    /// Whether `(src → dst)` is a true edge at exactly time `t`.
    fn collides(&self, src: usize, t_bits: u64, dst: usize) -> bool {
        self.edges.binary_search(&(src, t_bits, dst)).is_ok()
    }
}

impl FilteredNegativeSet {
    /// Build candidate sets for `events`. `train` feeds the
    /// Historical/Inductive pools (same pools as [`crate::EdgeSampler`]);
    /// the collision filter always consults the *full* graph.
    ///
    /// Panics if the candidate universe cannot supply `k` distinct valid
    /// negatives for some query — that is a configuration error (K too
    /// large for the dataset), not something to paper over silently.
    pub fn build(
        graph: &TemporalGraph,
        train: &[Interaction],
        events: &[Interaction],
        strategy: NegativeStrategy,
        k: usize,
        seed: u64,
    ) -> Self {
        assert!(k > 0, "filtered negative sets need k >= 1");
        let (dst_lo, dst_hi) = destination_range(graph);
        let pool = candidate_pool(graph, train, strategy);
        let index = TrueEdgeIndex::build(graph);
        let domain = dst_hi - dst_lo;
        let pool_len = if pool.is_empty() { domain } else { pool.len() };

        let mut candidates = Vec::with_capacity(events.len() * k);
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for (q, ev) in events.iter().enumerate() {
            let t_bits = ev.t.to_bits();
            let mut rng = init::rng(query_seed(seed, q, ev));
            chosen.clear();
            let valid = |cand: usize, chosen: &[usize]| {
                cand != ev.dst && !index.collides(ev.src, t_bits, cand) && !chosen.contains(&cand)
            };
            // Rejection sampling: bounded attempts keep pathological pools
            // from spinning; the deterministic sweep below finishes the set.
            let mut attempts = 0usize;
            let max_attempts = 32 * k;
            while chosen.len() < k && attempts < max_attempts {
                attempts += 1;
                let cand = if pool.is_empty() {
                    dst_lo + rng.gen_range(0..domain)
                } else {
                    pool[rng.gen_range(0..pool.len())]
                };
                if valid(cand, &chosen) {
                    chosen.push(cand);
                }
            }
            if chosen.len() < k {
                // Deterministic fallback: sweep the candidate universe from
                // an RNG-derived offset, taking the first valid entries.
                let start = rng.gen_range(0..pool_len);
                for step in 0..pool_len {
                    let idx = (start + step) % pool_len;
                    let cand = if pool.is_empty() {
                        dst_lo + idx
                    } else {
                        pool[idx]
                    };
                    if valid(cand, &chosen) {
                        chosen.push(cand);
                        if chosen.len() == k {
                            break;
                        }
                    }
                }
            }
            assert!(
                chosen.len() == k,
                "filtered negatives for '{}': query {q} (src {}, t {}) has \
                 only {} valid candidates after filtering — k={k} exceeds \
                 the {:?} pool",
                graph.name,
                ev.src,
                ev.t,
                chosen.len(),
                strategy,
            );
            candidates.extend_from_slice(&chosen);
        }
        FilteredNegativeSet {
            k,
            n: events.len(),
            candidates,
        }
    }

    /// Number of queries covered.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The K candidate destinations of query `q`.
    pub fn query(&self, q: usize) -> &[usize] {
        &self.candidates[q * self.k..(q + 1) * self.k]
    }

    /// Candidate ids for the query window `[start, start+len)` in *block*
    /// layout: `out[j * len + i]` is the j-th candidate of query
    /// `start + i` — the layout the batched scoring path consumes (source
    /// embeddings are reused across the K candidate blocks).
    pub fn block(&self, start: usize, len: usize) -> Vec<usize> {
        assert!(start + len <= self.n, "block window out of range");
        let mut out = vec![0usize; len * self.k];
        for i in 0..len {
            let row = self.query(start + i);
            for (j, &c) in row.iter().enumerate() {
                out[j * len + i] = c;
            }
        }
        out
    }

    /// FNV-1a digest over the full candidate layout — the cross-thread /
    /// cross-process determinism witness.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.k as u64);
        eat(self.n as u64);
        for &c in &self.candidates {
            eat(c as u64);
        }
        h
    }

    /// Heap bytes held (efficiency accounting).
    pub fn heap_bytes(&self) -> usize {
        self.candidates.capacity() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchtemp_graph::generators::GeneratorConfig;

    fn graph() -> TemporalGraph {
        GeneratorConfig::small("filtneg", 41).generate()
    }

    #[test]
    fn sets_have_k_distinct_valid_candidates() {
        let g = graph();
        let train = &g.events[..g.num_events() / 2];
        let s = FilteredNegativeSet::build(
            &g,
            train,
            &g.events[800..900],
            NegativeStrategy::Random,
            20,
            7,
        );
        assert_eq!(s.len(), 100);
        for (q, ev) in g.events[800..900].iter().enumerate() {
            let cands = s.query(q);
            assert_eq!(cands.len(), 20);
            let mut uniq: Vec<usize> = cands.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 20, "duplicates in query {q}");
            assert!(!cands.contains(&ev.dst), "true dst leaked into query {q}");
        }
    }

    #[test]
    fn collisions_at_query_timestamp_are_filtered() {
        let g = graph();
        // For every query, no candidate may be a true edge of (src, t).
        let s = FilteredNegativeSet::build(
            &g,
            &g.events,
            &g.events[..300],
            NegativeStrategy::Random,
            15,
            3,
        );
        for (q, ev) in g.events[..300].iter().enumerate() {
            for &c in s.query(q) {
                let collides = g
                    .events
                    .iter()
                    .any(|e| e.src == ev.src && e.t == ev.t && e.dst == c);
                assert!(
                    !collides,
                    "query {q}: candidate {c} is a true edge at t={}",
                    ev.t
                );
            }
        }
    }

    #[test]
    fn historical_candidates_come_from_training_pool() {
        let g = graph();
        let train = &g.events[..g.num_events() / 2];
        let pool: std::collections::HashSet<usize> = train.iter().map(|e| e.dst).collect();
        let s = FilteredNegativeSet::build(
            &g,
            train,
            &g.events[900..1000],
            NegativeStrategy::Historical,
            10,
            5,
        );
        for q in 0..s.len() {
            for &c in s.query(q) {
                assert!(pool.contains(&c));
            }
        }
    }

    #[test]
    fn bipartite_candidates_stay_in_item_range() {
        let g = graph();
        assert!(g.bipartite);
        let s = FilteredNegativeSet::build(
            &g,
            &g.events,
            &g.events[..200],
            NegativeStrategy::Random,
            12,
            9,
        );
        for q in 0..s.len() {
            for &c in s.query(q) {
                assert!(c >= g.num_users && c < g.num_nodes);
            }
        }
    }

    #[test]
    fn build_is_seed_deterministic_and_seed_sensitive() {
        let g = graph();
        let a = FilteredNegativeSet::build(
            &g,
            &g.events,
            &g.events[..100],
            NegativeStrategy::Random,
            10,
            1,
        );
        let b = FilteredNegativeSet::build(
            &g,
            &g.events,
            &g.events[..100],
            NegativeStrategy::Random,
            10,
            1,
        );
        let c = FilteredNegativeSet::build(
            &g,
            &g.events,
            &g.events[..100],
            NegativeStrategy::Random,
            10,
            2,
        );
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn per_query_seeding_ignores_window_position() {
        // Building over a window is NOT required to match a sub-window
        // (query index feeds the seed), but the same window twice must
        // match element-wise, and digests must reflect content.
        let g = graph();
        let a = FilteredNegativeSet::build(
            &g,
            &g.events,
            &g.events[50..80],
            NegativeStrategy::Random,
            8,
            11,
        );
        let b = FilteredNegativeSet::build(
            &g,
            &g.events,
            &g.events[50..80],
            NegativeStrategy::Random,
            8,
            11,
        );
        for q in 0..a.len() {
            assert_eq!(a.query(q), b.query(q));
        }
    }

    #[test]
    fn block_layout_transposes_queries() {
        let g = graph();
        let s = FilteredNegativeSet::build(
            &g,
            &g.events,
            &g.events[..10],
            NegativeStrategy::Random,
            4,
            13,
        );
        let block = s.block(2, 5);
        assert_eq!(block.len(), 20);
        for i in 0..5 {
            for j in 0..4 {
                assert_eq!(block[j * 5 + i], s.query(2 + i)[j]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_k_fails_loudly() {
        let g = graph();
        // More negatives than the item universe can supply.
        let k = g.num_nodes + 5;
        let _ = FilteredNegativeSet::build(
            &g,
            &g.events,
            &g.events[..5],
            NegativeStrategy::Random,
            k,
            1,
        );
    }
}
