//! The Leaderboard module (§3.2.1): collects per-job results, aggregates
//! mean ± std over seed runs, ranks models per (dataset, task, setting) with
//! best/second-best markers, computes the Average-Rank metric of Table 17,
//! and persists to JSON.

use std::collections::BTreeMap;
use std::path::Path;

use benchtemp_util::{json, Json, ToJson};

use crate::evaluator::mean_std;

/// One aggregated leaderboard entry (mean ± std over seeds).
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    pub model: String,
    pub dataset: String,
    /// e.g. "link_prediction" / "node_classification".
    pub task: String,
    /// e.g. "Transductive", "Inductive New-New".
    pub setting: String,
    /// e.g. "AUC", "AP".
    pub metric: String,
    pub mean: f64,
    pub std: f64,
    pub runs: usize,
}

/// Key for one comparison group: same dataset/task/setting/metric.
pub type GroupKey = (String, String, String, String);

impl ToJson for Entry {
    fn to_json(&self) -> Json {
        json!({
            "model": self.model.as_str(),
            "dataset": self.dataset.as_str(),
            "task": self.task.as_str(),
            "setting": self.setting.as_str(),
            "metric": self.metric.as_str(),
            "mean": self.mean,
            "std": self.std,
            "runs": self.runs,
        })
    }
}

impl Entry {
    fn from_json(j: &Json) -> Result<Self, String> {
        let str_field = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("entry: missing or invalid field {k:?}"))
        };
        let num_field = |k: &str| {
            j.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("entry: missing or invalid field {k:?}"))
        };
        Ok(Entry {
            model: str_field("model")?,
            dataset: str_field("dataset")?,
            task: str_field("task")?,
            setting: str_field("setting")?,
            metric: str_field("metric")?,
            mean: num_field("mean")?,
            std: num_field("std")?,
            runs: j
                .get("runs")
                .and_then(Json::as_usize)
                .ok_or_else(|| "entry: missing or invalid field \"runs\"".to_string())?,
        })
    }
}

/// In-memory leaderboard with JSON persistence.
#[derive(Clone, Debug, Default)]
pub struct Leaderboard {
    entries: Vec<Entry>,
}

impl ToJson for Leaderboard {
    fn to_json(&self) -> Json {
        json!({ "entries": self.entries.as_slice() })
    }
}

impl Leaderboard {
    pub fn new() -> Self {
        Self::default()
    }

    /// Aggregate raw per-seed values and push one entry.
    pub fn push_runs(
        &mut self,
        model: &str,
        dataset: &str,
        task: &str,
        setting: &str,
        metric: &str,
        values: &[f64],
    ) {
        let (mean, std) = mean_std(values);
        self.push(Entry {
            model: model.into(),
            dataset: dataset.into(),
            task: task.into(),
            setting: setting.into(),
            metric: metric.into(),
            mean,
            std,
            runs: values.len(),
        });
    }

    /// Push a pre-aggregated entry, replacing any previous entry for the
    /// same (model, dataset, task, setting, metric).
    pub fn push(&mut self, entry: Entry) {
        self.entries.retain(|e| {
            !(e.model == entry.model
                && e.dataset == entry.dataset
                && e.task == entry.task
                && e.setting == entry.setting
                && e.metric == entry.metric)
        });
        self.entries.push(entry);
    }

    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries of one comparison group sorted descending by mean.
    pub fn group(&self, dataset: &str, task: &str, setting: &str, metric: &str) -> Vec<&Entry> {
        let mut v: Vec<&Entry> = self
            .entries
            .iter()
            .filter(|e| {
                e.dataset == dataset && e.task == task && e.setting == setting && e.metric == metric
            })
            .collect();
        v.sort_by(|a, b| {
            b.mean
                .partial_cmp(&a.mean)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        v
    }

    /// Rank of each model (1-based, best = 1) within one group.
    pub fn ranks(
        &self,
        dataset: &str,
        task: &str,
        setting: &str,
        metric: &str,
    ) -> Vec<(String, usize)> {
        self.group(dataset, task, setting, metric)
            .into_iter()
            .enumerate()
            .map(|(i, e)| (e.model.clone(), i + 1))
            .collect()
    }

    /// The Average-Rank metric (Table 17): mean rank of each model across
    /// the given datasets for one (task, setting, metric). Models missing
    /// from a dataset's group are skipped in that dataset.
    pub fn average_rank(
        &self,
        datasets: &[&str],
        task: &str,
        setting: &str,
        metric: &str,
    ) -> Vec<(String, f64)> {
        let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        for ds in datasets {
            for (model, rank) in self.ranks(ds, task, setting, metric) {
                let e = sums.entry(model).or_insert((0.0, 0));
                e.0 += rank as f64;
                e.1 += 1;
            }
        }
        let mut out: Vec<(String, f64)> = sums
            .into_iter()
            .filter(|(_, (_, n))| *n > 0)
            .map(|(m, (s, n))| (m, s / n as f64))
            .collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// Render one group as the paper renders table cells: best marked
    /// `**bold**`, second-best `_underlined_` — unless the runner-up gap
    /// exceeds 0.05 (the paper's "do not highlight" rule).
    pub fn render_group(&self, dataset: &str, task: &str, setting: &str, metric: &str) -> String {
        let group = self.group(dataset, task, setting, metric);
        let best = group.first().map(|e| e.mean).unwrap_or(0.0);
        let mut out = String::new();
        for (i, e) in group.iter().enumerate() {
            let cell = format!("{:.4} ± {:.4}", e.mean, e.std);
            let marked = match i {
                0 => format!("**{cell}**"),
                1 if best - e.mean <= 0.05 => format!("_{cell}_"),
                _ => cell,
            };
            out.push_str(&format!("{:<12} {}\n", e.model, marked));
        }
        out
    }

    /// Persist to pretty JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json().to_string_pretty())
    }

    /// Load from JSON; empty leaderboard if the file doesn't exist.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        if !path.exists() {
            return Ok(Self::new());
        }
        let invalid = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
        let text = std::fs::read_to_string(path)?;
        let j = benchtemp_util::parse(&text).map_err(|e| invalid(e.to_string()))?;
        let entries = j
            .get("entries")
            .and_then(Json::as_array)
            .ok_or_else(|| invalid("leaderboard: missing \"entries\" array".into()))?
            .iter()
            .map(Entry::from_json)
            .collect::<Result<Vec<_>, _>>()
            .map_err(invalid)?;
        Ok(Leaderboard { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Leaderboard {
        let mut lb = Leaderboard::new();
        for (model, mean) in [("TGN", 0.90), ("CAWN", 0.95), ("JODIE", 0.80)] {
            lb.push_runs(
                model,
                "Reddit",
                "lp",
                "Transductive",
                "AUC",
                &[mean, mean, mean],
            );
        }
        for (model, mean) in [("TGN", 0.70), ("CAWN", 0.95), ("JODIE", 0.85)] {
            lb.push_runs(model, "MOOC", "lp", "Transductive", "AUC", &[mean]);
        }
        lb
    }

    #[test]
    fn group_sorts_descending() {
        let lb = sample();
        let g = lb.group("Reddit", "lp", "Transductive", "AUC");
        let names: Vec<&str> = g.iter().map(|e| e.model.as_str()).collect();
        assert_eq!(names, vec!["CAWN", "TGN", "JODIE"]);
    }

    #[test]
    fn ranks_are_one_based() {
        let lb = sample();
        let r = lb.ranks("Reddit", "lp", "Transductive", "AUC");
        assert_eq!(r[0], ("CAWN".to_string(), 1));
        assert_eq!(r[2], ("JODIE".to_string(), 3));
    }

    #[test]
    fn average_rank_matches_hand_computation() {
        let lb = sample();
        let ar = lb.average_rank(&["Reddit", "MOOC"], "lp", "Transductive", "AUC");
        // CAWN: rank 1 + 1 → 1.0; TGN: 2 + 3 → 2.5; JODIE: 3 + 2 → 2.5
        assert_eq!(ar[0].0, "CAWN");
        assert!((ar[0].1 - 1.0).abs() < 1e-9);
        let tgn = ar.iter().find(|(m, _)| m == "TGN").unwrap();
        assert!((tgn.1 - 2.5).abs() < 1e-9);
    }

    #[test]
    fn push_replaces_duplicates() {
        let mut lb = sample();
        let before = lb.len();
        lb.push_runs("TGN", "Reddit", "lp", "Transductive", "AUC", &[0.99]);
        assert_eq!(lb.len(), before);
        let g = lb.group("Reddit", "lp", "Transductive", "AUC");
        assert_eq!(g[0].model, "TGN");
    }

    #[test]
    fn render_marks_best_and_second() {
        let lb = sample();
        let text = lb.render_group("Reddit", "lp", "Transductive", "AUC");
        assert!(text.contains("**0.9500"));
        assert!(text.contains("_0.9000"));
    }

    #[test]
    fn render_skips_second_best_when_gap_large() {
        let mut lb = Leaderboard::new();
        lb.push_runs("A", "D", "lp", "S", "AUC", &[0.95]);
        lb.push_runs("B", "D", "lp", "S", "AUC", &[0.80]); // gap 0.15 > 0.05
        let text = lb.render_group("D", "lp", "S", "AUC");
        assert!(text.contains("**0.9500"));
        assert!(
            !text.contains('_'),
            "large gap must not be underlined: {text}"
        );
    }

    #[test]
    fn json_round_trip() {
        let lb = sample();
        let dir = std::env::temp_dir().join("benchtemp_lb_test");
        let path = dir.join("leaderboard.json");
        lb.save(&path).unwrap();
        let loaded = Leaderboard::load(&path).unwrap();
        assert_eq!(lb.len(), loaded.len());
        for (a, b) in lb.entries().iter().zip(loaded.entries()) {
            assert_eq!(a.model, b.model);
            assert_eq!(a.dataset, b.dataset);
            assert_eq!(a.runs, b.runs);
            // JSON text round-trip may perturb the last ULP of f64.
            assert!((a.mean - b.mean).abs() < 1e-12);
            assert!((a.std - b.std).abs() < 1e-12);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_is_empty() {
        let lb = Leaderboard::load(Path::new("/nonexistent/lb.json")).unwrap();
        assert!(lb.is_empty());
    }

    #[test]
    fn mean_std_aggregation() {
        let mut lb = Leaderboard::new();
        lb.push_runs("M", "D", "lp", "S", "AUC", &[0.8, 0.9, 1.0]);
        let e = &lb.entries()[0];
        assert!((e.mean - 0.9).abs() < 1e-12);
        assert!(e.std > 0.0);
        assert_eq!(e.runs, 3);
    }
}
