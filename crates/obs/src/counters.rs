//! Process-wide monotonic counters and high-water gauges.
//!
//! Counters are `static` atomics ticked by the hot path at batch
//! granularity (one relaxed add per batch-level call, never per element),
//! so the disabled-case overhead is a handful of uncontended atomic adds
//! per batch. A [`crate::Recorder`] snapshots all counters at creation and
//! reports deltas, giving per-job attribution on top of process-wide
//! storage.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotonic counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named high-water-mark gauge (monotone max).
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record an observation; the gauge keeps the maximum seen.
    #[inline]
    pub fn sample(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Negative destinations drawn by `EdgeSampler::sample_batch`.
pub static NEGATIVES_SAMPLED: Counter = Counter::new("negatives_sampled");
/// Neighbor slots filled by `NeighborFinder::sample_frontier`.
pub static FRONTIER_NODES_EXPANDED: Counter = Counter::new("frontier_nodes_expanded");
/// Nodes pushed onto the autograd tape.
pub static TAPE_NODES_ALLOCATED: Counter = Counter::new("tape_nodes_allocated");
/// Floating-point operations issued by the matmul kernels (2·m·k·n each).
pub static MATMUL_FLOPS: Counter = Counter::new("matmul_flops");
/// Tasks handed to `benchtemp-tensor::pool` workers.
pub static POOL_TASKS_DISPATCHED: Counter = Counter::new("pool_tasks_dispatched");
/// Calls to `Adam::step`.
pub static OPTIMIZER_STEPS: Counter = Counter::new("optimizer_steps");
/// Times the peak-RSS gauge was sampled from /proc.
pub static PEAK_RSS_SAMPLES: Counter = Counter::new("peak_rss_samples");
/// Dispatch batches whose chunk-slot claims the sanitizer verified.
pub static SANITIZE_BATCHES_CHECKED: Counter = Counter::new("sanitize_batches_checked");
/// Individual chunk-slot claims the sanitizer verified for disjointness.
pub static SANITIZE_CLAIMS_CHECKED: Counter = Counter::new("sanitize_claims_checked");
/// Fused tape nodes executed (`LinearAffine`, `TimeEncodeFused`).
pub static FUSED_OPS_EXECUTED: Counter = Counter::new("fused_ops_executed");
/// Tape forward/backward buffers served from the recycled `BufferPool`.
pub static TAPE_POOL_HITS: Counter = Counter::new("tape_pool_hits");
/// Tape buffer requests that fell through to a fresh heap allocation.
pub static TAPE_POOL_MISSES: Counter = Counter::new("tape_pool_misses");
/// Δt rows served by the `TimeEncode` per-batch memo instead of recompute.
pub static TIME_ENCODE_MEMO_HITS: Counter = Counter::new("time_encode_memo_hits");
/// Coalesced copy runs executed by the tape's pooled SoA gather leaf — a
/// pure function of the gather index lists, so thread-count-invariant.
pub static GATHER_COALESCED_RUNS: Counter = Counter::new("tape.gather_coalesced_runs");

/// Page-cache lookups served from a resident frame (`benchtemp-store`).
pub static STORE_PAGE_HITS: Counter = Counter::new("store.page_hits");
/// Page-cache lookups that faulted a page in from disk.
pub static STORE_PAGE_MISSES: Counter = Counter::new("store.page_misses");
/// CLOCK victims evicted to stay inside the page-cache byte budget.
pub static STORE_PAGE_EVICTIONS: Counter = Counter::new("store.page_evictions");
/// Write-ahead-log records replayed during store open/seal.
pub static STORE_WAL_RECORDS: Counter = Counter::new("store.wal_records_replayed");
/// Events folded into CSR pages by the external-sort bulk loader.
pub static STORE_BULK_EVENTS: Counter = Counter::new("store.bulk_events");

/// Peak resident set size observed (bytes).
pub static PEAK_RSS_BYTES: Gauge = Gauge::new("peak_rss_bytes");
/// Bytes held by `benchtemp-store` page-cache frames (bounded by the
/// `BENCHTEMP_PAGE_CACHE_MB` budget; high-water mark).
pub static STORE_CACHE_RESIDENT_BYTES: Gauge = Gauge::new("store.cache_resident_bytes");
/// Bytes held by the tape's recycled matrix buffers after the last trim.
pub static TAPE_POOL_RESIDENT_BYTES: Gauge = Gauge::new("tape.pool_resident_bytes");

/// All counters, in a fixed order ([`crate::Recorder`] baselines index into
/// this slice, so the order is part of the recorder contract).
pub fn all() -> &'static [&'static Counter] {
    static ALL: [&Counter; 19] = [
        &NEGATIVES_SAMPLED,
        &FRONTIER_NODES_EXPANDED,
        &TAPE_NODES_ALLOCATED,
        &MATMUL_FLOPS,
        &POOL_TASKS_DISPATCHED,
        &OPTIMIZER_STEPS,
        &PEAK_RSS_SAMPLES,
        &SANITIZE_BATCHES_CHECKED,
        &SANITIZE_CLAIMS_CHECKED,
        &FUSED_OPS_EXECUTED,
        &TAPE_POOL_HITS,
        &TAPE_POOL_MISSES,
        &TIME_ENCODE_MEMO_HITS,
        &GATHER_COALESCED_RUNS,
        &STORE_PAGE_HITS,
        &STORE_PAGE_MISSES,
        &STORE_PAGE_EVICTIONS,
        &STORE_WAL_RECORDS,
        &STORE_BULK_EVENTS,
    ];
    &ALL
}

/// All gauges, in a fixed order.
pub fn gauges() -> &'static [&'static Gauge] {
    static GAUGES: [&Gauge; 3] = [
        &PEAK_RSS_BYTES,
        &TAPE_POOL_RESIDENT_BYTES,
        &STORE_CACHE_RESIDENT_BYTES,
    ];
    &GAUGES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|c| c.name()).collect();
        names.extend(gauges().iter().map(|g| g.name()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn add_and_incr_accumulate() {
        static LOCAL: Counter = Counter::new("local_test_counter");
        LOCAL.add(3);
        LOCAL.incr();
        assert_eq!(LOCAL.get(), 4);
    }
}
