//! `benchtemp-obs`: the observability layer behind the efficiency tables.
//!
//! Three pieces, all dependency-free:
//!
//! * **Hierarchical spans** ([`span`], [`timed`]) with thread-aware timing.
//!   Each thread keeps its own span stack; a span's *self* time is its
//!   elapsed time minus the elapsed time of its children, so one unit of
//!   wall-clock is attributed to exactly one span name. This is what makes
//!   stage accounting robust by construction: a `train_epoch` span cannot
//!   absorb time spent inside a sibling `val_scoring` span, because sibling
//!   spans never overlap on a thread.
//! * **Named monotonic counters and gauges** ([`counters`]): process-wide
//!   atomics ticked by the hot path (negatives sampled, frontier slots
//!   expanded, tape nodes allocated, matmul FLOPs, pool tasks dispatched,
//!   peak-RSS samples).
//! * **Two sinks**: an aggregated per-stage [`Profile`] read from a
//!   [`Recorder`] (embedded in `EfficiencyReport`), and an optional JSONL
//!   trace stream ([`trace`], enabled by `BENCHTEMP_TRACE=path`) for
//!   offline inspection.
//!
//! # Scoping
//!
//! Aggregation is scoped, not global: a job creates a [`Recorder`] and
//! [`Recorder::install`]s it on the current thread; every span closed while
//! it is installed lands in that recorder. The worker pool propagates the
//! installing thread's recorder into its tasks, so spans closed on workers
//! attribute to the job that dispatched them. Concurrent jobs (e.g. tests
//! running in parallel threads) therefore never contaminate each other's
//! profiles. With no recorder installed and tracing disabled, [`span`] is
//! inert: it never reads the clock.
//!
//! Counters are process-wide monotonic; a [`Recorder`] snapshots them at
//! creation and reports per-job deltas in its [`Profile`].

pub mod counters;
pub mod trace;

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Aggregated statistics for one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanStat {
    /// Number of times a span with this name closed.
    pub count: u64,
    /// Total elapsed seconds across all closings (inclusive of children).
    pub total_secs: f64,
    /// Exclusive seconds: total minus time spent in child spans.
    pub self_secs: f64,
}

/// A snapshot of everything a [`Recorder`] saw: per-span statistics plus
/// counter deltas and gauge values. Spans and counters are sorted by name
/// so serialized output is deterministic.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    pub spans: Vec<(String, SpanStat)>,
    /// Counter deltas since the recorder was created.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge values at snapshot time (absolute, not deltas).
    pub gauges: Vec<(&'static str, u64)>,
}

impl Profile {
    /// Statistics for one span name (all-zero if the span never closed).
    pub fn stat(&self, name: &str) -> SpanStat {
        self.spans
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// Inclusive seconds accumulated under `name`.
    pub fn total_secs(&self, name: &str) -> f64 {
        self.stat(name).total_secs
    }

    /// Exclusive seconds accumulated under `name`.
    pub fn self_secs(&self, name: &str) -> f64 {
        self.stat(name).self_secs
    }

    /// Number of closings of `name`.
    pub fn count(&self, name: &str) -> u64 {
        self.stat(name).count
    }

    /// Mean inclusive seconds per closing of `name` (0.0 if never closed).
    pub fn mean_secs(&self, name: &str) -> f64 {
        let s = self.stat(name);
        if s.count == 0 {
            0.0
        } else {
            s.total_secs / s.count as f64
        }
    }

    /// Delta of one named counter over the recorder's lifetime.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

struct RecorderInner {
    stats: Mutex<HashMap<&'static str, SpanStat>>,
    /// Counter values at recorder creation, aligned with [`counters::all`].
    counter_base: Vec<u64>,
}

/// A scoped aggregation sink for spans. Clones share the same underlying
/// storage (it is an `Arc`), which is how the worker pool carries the
/// installing thread's recorder into its tasks.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Create a recorder and snapshot the process counters as its baseline.
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(RecorderInner {
                stats: Mutex::new(HashMap::new()),
                counter_base: counters::all().iter().map(|c| c.get()).collect(),
            }),
        }
    }

    /// Install this recorder on the current thread; spans closed while the
    /// guard lives are aggregated here. The previous recorder (if any) is
    /// restored when the guard drops.
    pub fn install(&self) -> InstallGuard {
        // audit-allow(hot-path-alloc-reachability): Recorder is an Arc handle; clone is a refcount increment, not a heap allocation
        let prev = CURRENT.with(|c| c.borrow_mut().replace(self.clone()));
        InstallGuard { prev }
    }

    fn record(&self, name: &'static str, total_secs: f64, self_secs: f64) {
        let mut stats = self.inner.stats.lock().unwrap();
        let s = stats.entry(name).or_default();
        s.count += 1;
        s.total_secs += total_secs;
        s.self_secs += self_secs;
    }

    /// Snapshot the aggregated profile (may be taken at any time).
    pub fn profile(&self) -> Profile {
        let mut spans: Vec<(String, SpanStat)> = self
            .inner
            .stats
            .lock()
            .unwrap()
            .iter()
            .map(|(&n, &s)| (n.to_string(), s))
            .collect();
        spans.sort_by(|a, b| a.0.cmp(&b.0));
        let counters = counters::all()
            .iter()
            .zip(&self.inner.counter_base)
            .map(|(c, &base)| (c.name(), c.get().saturating_sub(base)))
            .collect();
        let gauges = counters::gauges()
            .iter()
            .map(|g| (g.name(), g.get()))
            .collect();
        Profile {
            spans,
            counters,
            gauges,
        }
    }
}

/// Guard restoring the thread's previous recorder on drop.
pub struct InstallGuard {
    prev: Option<Recorder>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Recorder>> = const { RefCell::new(None) };
    /// Per-thread stack of child-time accumulators, one slot per open span.
    static CHILD_STACK: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// The recorder installed on the current thread, if any. The worker pool
/// calls this at dispatch time to propagate attribution into its tasks.
pub fn current() -> Option<Recorder> {
    // audit-allow(hot-path-alloc-reachability): Option<Recorder> clone bumps an Arc refcount; no heap allocation on this path
    CURRENT.with(|c| c.borrow().clone())
}

/// An open span. Closing (dropping) it attributes its elapsed time to
/// `name` in the current recorder and emits a trace event if tracing is on.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    recorder: Option<Recorder>,
    traced: bool,
    sid: u64,
}

/// Open a span. Inert (no clock read) when no recorder is installed on this
/// thread and tracing is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    let recorder = current();
    let traced = trace::enabled();
    if recorder.is_none() && !traced {
        return SpanGuard {
            name,
            start: None,
            recorder: None,
            traced: false,
            sid: 0,
        };
    }
    CHILD_STACK.with(|s| s.borrow_mut().push(0.0));
    let sid = if traced { trace::emit_open(name) } else { 0 };
    SpanGuard {
        name,
        start: Some(Instant::now()),
        recorder,
        traced,
        sid,
    }
}

impl SpanGuard {
    /// Seconds since the span opened (0.0 for an inert span).
    pub fn elapsed_secs(&self) -> f64 {
        self.start.map(|s| s.elapsed().as_secs_f64()).unwrap_or(0.0)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed().as_secs_f64();
        let child = CHILD_STACK.with(|s| s.borrow_mut().pop().unwrap_or(0.0));
        let self_secs = (elapsed - child).max(0.0);
        CHILD_STACK.with(|s| {
            if let Some(parent) = s.borrow_mut().last_mut() {
                *parent += elapsed;
            }
        });
        if let Some(r) = &self.recorder {
            r.record(self.name, elapsed, self_secs);
        }
        if self.traced {
            trace::emit_close(self.name, self.sid, elapsed, self_secs);
        }
    }
}

/// Run `f` under a span named `name`.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _g = span(name);
    f()
}

/// Run `f` under a span named `name`, returning the span's elapsed seconds
/// alongside the result (0.0 when the span is inert).
pub fn timed_secs<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, f64) {
    let g = span(name);
    let out = f();
    let secs = g.elapsed_secs();
    drop(g);
    (out, secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sleep_ms(ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
    }

    #[test]
    fn span_without_recorder_or_trace_is_inert() {
        let g = span("inert");
        assert_eq!(g.elapsed_secs(), 0.0);
    }

    #[test]
    fn nested_spans_attribute_self_time_exclusively() {
        let rec = Recorder::new();
        let _g = rec.install();
        {
            let _outer = span("outer");
            sleep_ms(12);
            {
                let _inner = span("inner");
                sleep_ms(12);
            }
            sleep_ms(4);
        }
        let p = rec.profile();
        let outer = p.stat("outer");
        let inner = p.stat("inner");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Outer total covers everything; outer self excludes inner.
        assert!(
            outer.total_secs >= 0.026,
            "outer total {}",
            outer.total_secs
        );
        assert!(
            inner.total_secs >= 0.010,
            "inner total {}",
            inner.total_secs
        );
        assert!(
            outer.self_secs >= 0.012 && outer.self_secs <= outer.total_secs - 0.010,
            "outer self {} of total {}",
            outer.self_secs,
            outer.total_secs
        );
        // Conservation: self times sum to the outer total.
        let sum = outer.self_secs + inner.self_secs;
        assert!(
            (sum - outer.total_secs).abs() < 0.004,
            "self-sum {sum} vs outer total {}",
            outer.total_secs
        );
    }

    #[test]
    fn sibling_spans_do_not_contaminate_each_other() {
        let rec = Recorder::new();
        let _g = rec.install();
        {
            let _a = span("stage_a");
            sleep_ms(15);
        }
        {
            let _b = span("stage_b");
            sleep_ms(3);
        }
        let p = rec.profile();
        // stage_a closed before stage_b opened: its time cannot include b's.
        assert!(p.total_secs("stage_a") >= 0.013);
        assert!(p.total_secs("stage_b") >= 0.002);
        assert!(
            p.total_secs("stage_b") < 0.013,
            "stage_b absorbed stage_a's time: {}",
            p.total_secs("stage_b")
        );
        assert_eq!(p.stat("stage_a").count, 1);
    }

    #[test]
    fn repeated_spans_accumulate_counts_and_means() {
        let rec = Recorder::new();
        let _g = rec.install();
        for _ in 0..3 {
            let _s = span("epoch");
            sleep_ms(4);
        }
        let p = rec.profile();
        assert_eq!(p.count("epoch"), 3);
        assert!(p.mean_secs("epoch") >= 0.003);
        assert!((p.mean_secs("epoch") - p.total_secs("epoch") / 3.0).abs() < 1e-12);
    }

    #[test]
    fn install_guard_restores_previous_recorder() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        let _a = outer.install();
        {
            let _b = inner.install();
            timed("scoped", || sleep_ms(2));
        }
        timed("outer_only", || sleep_ms(2));
        assert_eq!(inner.profile().count("scoped"), 1);
        assert_eq!(inner.profile().count("outer_only"), 0);
        assert_eq!(outer.profile().count("scoped"), 0);
        assert_eq!(outer.profile().count("outer_only"), 1);
    }

    #[test]
    fn recorder_reports_counter_deltas() {
        let before = Recorder::new();
        counters::NEGATIVES_SAMPLED.add(7);
        let after = Recorder::new();
        counters::NEGATIVES_SAMPLED.add(5);
        assert!(before.profile().counter("negatives_sampled") >= 12);
        assert_eq!(after.profile().counter("negatives_sampled"), 5);
    }

    #[test]
    fn gauge_tracks_maximum() {
        counters::PEAK_RSS_BYTES.sample(100);
        counters::PEAK_RSS_BYTES.sample(50);
        assert!(counters::PEAK_RSS_BYTES.get() >= 100);
    }

    #[test]
    fn spans_on_other_threads_attribute_via_installed_recorder() {
        let rec = Recorder::new();
        let handle = {
            let rec = rec.clone();
            // audit-allow(no-raw-thread-spawn): this test verifies recorder hand-off to a *foreign* thread; the pool would defeat it
            std::thread::spawn(move || {
                let _g = rec.install();
                timed("worker_span", || sleep_ms(3));
            })
        };
        handle.join().unwrap();
        assert_eq!(rec.profile().count("worker_span"), 1);
    }
}
