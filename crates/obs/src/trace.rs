//! Optional JSONL trace sink, enabled by `BENCHTEMP_TRACE=path` (or
//! programmatically via [`set_path`]).
//!
//! One JSON object per line. Three event kinds:
//!
//! ```text
//! {"ev":"open","span":"train_epoch","tid":0,"sid":12,"t_us":48210}
//! {"ev":"close","span":"train_epoch","tid":0,"sid":12,"t_us":91455,"dur_us":43245,"self_us":40012}
//! {"ev":"counters","t_us":91460,"negatives_sampled":6000,...,"peak_rss_bytes":73400320}
//! ```
//!
//! * `tid` — per-thread id, dense from 0 in first-emission order.
//! * `sid` — globally unique span id; an open and its close share a `sid`,
//!   which is how readers pair events (and detect spans left open at exit).
//! * `t_us` — microseconds since the process trace epoch (first event).
//!
//! Span names are static Rust identifiers (`train_epoch`, `dense`, ...), so
//! no JSON string escaping is needed. Writes are line-buffered under a
//! mutex; when tracing is off the only cost on the span path is one relaxed
//! atomic load.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

const UNRESOLVED: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNRESOLVED);
static SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);
static SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Whether trace events are being written. Resolves `BENCHTEMP_TRACE` from
/// the environment on first call; afterwards it is one relaxed atomic load.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => resolve_from_env(),
    }
}

fn resolve_from_env() -> bool {
    // audit-allow(determinism-taint-hot-path): resolved once per process, latched into STATE; later hot-path calls are one atomic load
    match std::env::var("BENCHTEMP_TRACE") {
        Ok(path) if !path.is_empty() => {
            set_path(Some(Path::new(&path)));
            STATE.load(Ordering::Relaxed) == ON
        }
        _ => {
            // Only claim OFF if nobody set a sink concurrently.
            let _ = STATE.compare_exchange(UNRESOLVED, OFF, Ordering::Relaxed, Ordering::Relaxed);
            STATE.load(Ordering::Relaxed) == ON
        }
    }
}

/// Point the trace sink at `path` (truncating it), or disable tracing with
/// `None`. Overrides the environment; flushes and closes any previous sink.
/// Intended for tests and benchmarks that toggle tracing in-process.
pub fn set_path(path: Option<&Path>) {
    let mut sink = SINK.lock().unwrap();
    if let Some(prev) = sink.as_mut() {
        let _ = prev.flush();
    }
    match path {
        Some(p) => match File::create(p) {
            Ok(f) => {
                *sink = Some(BufWriter::new(f));
                STATE.store(ON, Ordering::Relaxed);
            }
            Err(e) => {
                eprintln!("benchtemp-obs: cannot open trace file {}: {e}", p.display());
                *sink = None;
                STATE.store(OFF, Ordering::Relaxed);
            }
        },
        None => {
            *sink = None;
            STATE.store(OFF, Ordering::Relaxed);
        }
    }
}

/// Flush buffered trace output to disk (no-op when tracing is off).
pub fn flush() {
    if let Some(s) = SINK.lock().unwrap().as_mut() {
        let _ = s.flush();
    }
}

fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

fn tid() -> u64 {
    TID.with(|t| *t)
}

/// Emit a span-open event and return its fresh `sid`.
///
/// Formats straight into the locked `BufWriter` — no intermediate `String`;
/// the per-event cost is what keeps tracing inside its ≤3% overhead budget
/// on sampling-bound workloads (measured by `bench_kernels`).
pub(crate) fn emit_open(span: &'static str) -> u64 {
    let sid = SEQ.fetch_add(1, Ordering::Relaxed);
    let (tid, t) = (tid(), now_us());
    if let Some(s) = SINK.lock().unwrap().as_mut() {
        let _ = writeln!(
            s,
            "{{\"ev\":\"open\",\"span\":\"{span}\",\"tid\":{tid},\"sid\":{sid},\"t_us\":{t}}}"
        );
    }
    sid
}

/// Emit the close event paired (by `sid`) with an earlier open.
pub(crate) fn emit_close(span: &'static str, sid: u64, dur_secs: f64, self_secs: f64) {
    let (tid, t) = (tid(), now_us());
    let dur = (dur_secs * 1e6) as u64;
    let slf = (self_secs * 1e6) as u64;
    if let Some(s) = SINK.lock().unwrap().as_mut() {
        let _ = writeln!(
            s,
            "{{\"ev\":\"close\",\"span\":\"{span}\",\"tid\":{tid},\"sid\":{sid},\"t_us\":{t},\"dur_us\":{dur},\"self_us\":{slf}}}"
        );
    }
}

/// Emit a snapshot of every counter and gauge (no-op when tracing is off).
/// Call at job boundaries so traces carry final totals.
pub fn emit_counters() {
    if !enabled() {
        return;
    }
    let mut line = format!("{{\"ev\":\"counters\",\"t_us\":{}", now_us());
    for c in crate::counters::all() {
        line.push_str(&format!(",\"{}\":{}", c.name(), c.get()));
    }
    for g in crate::counters::gauges() {
        line.push_str(&format!(",\"{}\":{}", g.name(), g.get()));
    }
    line.push('}');
    write_line(&line);
    flush();
}

fn write_line(line: &str) {
    if let Some(s) = SINK.lock().unwrap().as_mut() {
        let _ = writeln!(s, "{line}");
    }
}
