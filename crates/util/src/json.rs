//! A minimal JSON document model: value tree, writer, parser, and the
//! [`crate::json!`] macro.
//!
//! Deliberately small — the workspace writes result artifacts and reads
//! back two files (`leaderboard.json`, `meta.json`). Object keys keep
//! insertion order so output is deterministic and diffs are stable.
//! Non-finite floats serialize as `null`, matching `serde_json`'s default.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Pretty serialization with 2-space indentation (the layout
    /// `serde_json::to_string_pretty` produced for the same data).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

/// Compact serialization; `Json::to_string()` comes from the blanket
/// `ToString` impl.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 2f64.powi(53) {
        // Integral values print without a trailing ".0" — `{}` on f64
        // already does this, but make the intent explicit.
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{}` prints the shortest string that round-trips to the same f64.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value — the workspace's stand-in for
/// `serde::Serialize`.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! impl_tojson_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}
impl_tojson_num!(f32, f64, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

/// Build [`Json`] values with JSON-ish syntax, mirroring `serde_json::json!`:
///
/// ```
/// use benchtemp_util::json;
/// let v = json!({ "name": "wiki", "n": 3, "tags": ["a", "b"], "extra": null });
/// assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::json::Json::Null };
    (true) => { $crate::json::Json::Bool(true) };
    (false) => { $crate::json::Json::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::json::Json::Arr($crate::json_arr!([] () $($tt)*)) };
    ({ $($tt:tt)* }) => { $crate::json::Json::Obj($crate::json_obj!([] () $($tt)*)) };
    ($other:expr) => { $crate::json::ToJson::to_json(&$other) };
}

/// Internal: accumulate array elements (`json!` helper, not for direct use).
///
/// State shape: `[done exprs,] (value tokens munched so far) remaining…`.
/// Value tokens are munched one token tree at a time until a top-level
/// comma; parens/brackets/braces arrive as whole token trees, so commas
/// inside them never split an element.
#[macro_export]
#[doc(hidden)]
macro_rules! json_arr {
    // Done.
    ([ $($done:expr,)* ] ()) => { vec![ $($done,)* ] };
    // Element is a bare JSON structure: recurse wholesale.
    ([ $($done:expr,)* ] () null, $($rest:tt)*) => { $crate::json_arr!([ $($done,)* $crate::json!(null), ] () $($rest)*) };
    ([ $($done:expr,)* ] () null) => { vec![ $($done,)* $crate::json!(null) ] };
    ([ $($done:expr,)* ] () [ $($inner:tt)* ], $($rest:tt)*) => { $crate::json_arr!([ $($done,)* $crate::json!([ $($inner)* ]), ] () $($rest)*) };
    ([ $($done:expr,)* ] () [ $($inner:tt)* ]) => { vec![ $($done,)* $crate::json!([ $($inner)* ]) ] };
    ([ $($done:expr,)* ] () { $($inner:tt)* }, $($rest:tt)*) => { $crate::json_arr!([ $($done,)* $crate::json!({ $($inner)* }), ] () $($rest)*) };
    ([ $($done:expr,)* ] () { $($inner:tt)* }) => { vec![ $($done,)* $crate::json!({ $($inner)* }) ] };
    // Munch expression tokens until the next top-level comma.
    ([ $($done:expr,)* ] ( $($val:tt)+ ) , $($rest:tt)*) => { $crate::json_arr!([ $($done,)* $crate::json_val!($($val)+), ] () $($rest)*) };
    ([ $($done:expr,)* ] ( $($val:tt)* ) $next:tt $($rest:tt)*) => { $crate::json_arr!([ $($done,)* ] ( $($val)* $next ) $($rest)*) };
    ([ $($done:expr,)* ] ( $($val:tt)+ )) => { vec![ $($done,)* $crate::json_val!($($val)+) ] };
}

/// Internal: accumulate object entries (`json!` helper, not for direct use).
/// Same munching scheme as `json_arr`, with `key : structure` entries
/// intercepted before munching starts so brace/bracket values become nested
/// `json!` calls rather than (invalid) Rust block expressions.
#[macro_export]
#[doc(hidden)]
macro_rules! json_obj {
    // Done.
    ([ $($done:expr,)* ] ()) => { vec![ $($done,)* ] };
    // `key: <structure>` followed by a comma or the end.
    ([ $($done:expr,)* ] () $key:tt : null, $($rest:tt)*) => { $crate::json_obj!([ $($done,)* ($key.to_string(), $crate::json!(null)), ] () $($rest)*) };
    ([ $($done:expr,)* ] () $key:tt : null) => { vec![ $($done,)* ($key.to_string(), $crate::json!(null)) ] };
    ([ $($done:expr,)* ] () $key:tt : [ $($inner:tt)* ], $($rest:tt)*) => { $crate::json_obj!([ $($done,)* ($key.to_string(), $crate::json!([ $($inner)* ])), ] () $($rest)*) };
    ([ $($done:expr,)* ] () $key:tt : [ $($inner:tt)* ]) => { vec![ $($done,)* ($key.to_string(), $crate::json!([ $($inner)* ])) ] };
    ([ $($done:expr,)* ] () $key:tt : { $($inner:tt)* }, $($rest:tt)*) => { $crate::json_obj!([ $($done,)* ($key.to_string(), $crate::json!({ $($inner)* })), ] () $($rest)*) };
    ([ $($done:expr,)* ] () $key:tt : { $($inner:tt)* }) => { vec![ $($done,)* ($key.to_string(), $crate::json!({ $($inner)* })) ] };
    // `key: expr` — munch tokens until the next top-level comma.
    ([ $($done:expr,)* ] ( $($val:tt)+ ) , $($rest:tt)*) => { $crate::json_obj!([ $($done,)* $crate::json_entry!($($val)+), ] () $($rest)*) };
    ([ $($done:expr,)* ] ( $($val:tt)* ) $next:tt $($rest:tt)*) => { $crate::json_obj!([ $($done,)* ] ( $($val)* $next ) $($rest)*) };
    ([ $($done:expr,)* ] ( $($val:tt)+ )) => { vec![ $($done,)* $crate::json_entry!($($val)+) ] };
}

/// Internal: turn munched `key : value-tokens` into one object entry.
#[macro_export]
#[doc(hidden)]
macro_rules! json_entry {
    ($key:tt : $val:expr) => {
        ($key.to_string(), $crate::json::ToJson::to_json(&$val))
    };
}

/// Internal: turn munched value tokens into a `Json` value.
#[macro_export]
#[doc(hidden)]
macro_rules! json_val {
    ($val:expr) => {
        $crate::json::ToJson::to_json(&$val)
    };
}

/// Parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{lit}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected `:` after object key"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not needed for our artifacts;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar at a time.
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, format!("bad number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested_document() {
        let v = json!({
            "name": "wikipedia",
            "bipartite": true,
            "num_nodes": 9227,
            "auc": 0.9625,
            "label": null,
            "runs": [
                { "seed": 0, "ap": 0.97 },
                { "seed": 1, "ap": 0.955 },
            ],
        });
        for text in [v.to_string(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "failed on {text}");
        }
    }

    #[test]
    fn macro_accepts_arbitrary_expressions() {
        let xs = [1usize, 2, 3];
        let name = String::from("x");
        let v = json!({
            "sum": xs.iter().sum::<usize>(),
            "halves": xs.iter().map(|&x| x as f64 / 2.0).collect::<Vec<_>>(),
            "name": name,
            "pair": (1 + 1),
        });
        assert_eq!(v.get("sum").unwrap().as_u64(), Some(6));
        assert_eq!(v.get("pair").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("halves").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn writer_escapes_and_formats() {
        let v = json!({ "s": "a\"b\\c\nd", "i": 42, "f": 0.5, "neg": -3 });
        let text = v.to_string();
        assert_eq!(text, r#"{"s":"a\"b\\c\nd","i":42,"f":0.5,"neg":-3}"#);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json!(f64::NAN).to_string(), "null");
        assert_eq!(json!(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(json!(5.0f64).to_string(), "5");
        assert_eq!(json!(5.25f64).to_string(), "5.25");
    }

    #[test]
    fn f64_round_trips_through_text() {
        for x in [0.1, 1.0 / 3.0, 0.9625431, 1e-12, 12345.6789] {
            let text = Json::Num(x).to_string();
            assert_eq!(parse(&text).unwrap().as_f64().unwrap(), x, "{text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("nulla").is_err());
    }

    #[test]
    fn pretty_layout_is_stable() {
        let v = json!({ "a": [1, 2], "b": {} });
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}"
        );
    }

    #[test]
    fn accessors_enforce_types() {
        let v = json!({ "n": 3, "f": 2.5, "s": "x", "b": true });
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }
}
