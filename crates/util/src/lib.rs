//! # benchtemp-util
//!
//! Dependency-free utilities shared across the workspace. Today that is a
//! single subsystem: a small JSON value tree with a pretty writer, a strict
//! parser, and a [`json!`] construction macro — enough to persist result
//! artifacts (leaderboards, dataset metadata, bench reports) on a build
//! host with no crate registry access, where `serde`/`serde_json` cannot
//! even be resolved.

pub mod json;

pub use json::{parse, Json, JsonError, ToJson};
