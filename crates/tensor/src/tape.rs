//! Reverse-mode automatic differentiation on an arena tape.
//!
//! A [`Tape`] records every operation as a node; [`Var`] is a copyable handle
//! into the arena. Calling [`Tape::backward`] seeds the gradient of a scalar
//! output and walks the tape in reverse, accumulating gradients into every
//! node. Parameters are ordinary leaves whose gradients are read back by the
//! optimizer after the backward pass.
//!
//! The design trades generality for auditability: each op's backward rule is
//! a hand-derived match arm, and every rule is checked against finite
//! differences in the test suite.

// audit-allow-file(hot-path-alloc-reachability): forward ops allocate their
// output node's storage by design (one arena push per op), and the parallel
// attention path boxes per-task closures; the zero-alloc pins cover the inner
// row kernels, which run on preallocated rows below the parallel thresholds.

use crate::matrix::Matrix;

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// Activation fused into [`Tape::linear_affine`]. Each variant applies the
/// exact elementwise function of the corresponding standalone tape op
/// (`relu`/`sigmoid`/`tanh`), so fusing it changes no bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    None,
    Relu,
    Sigmoid,
    Tanh,
}

impl Activation {
    #[inline]
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => stable_sigmoid(x),
            Activation::Tanh => x.tanh(),
        }
    }
}

/// Operation record; indices refer to parent nodes on the same tape.
enum Op {
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Neg(usize),
    Scale(usize, f32),
    AddScalar(usize),
    MatMul(usize, usize),
    Transpose(usize),
    Sigmoid(usize),
    Tanh(usize),
    Relu(usize),
    Exp(usize),
    Ln(usize),
    Cos(usize),
    SoftmaxRows(usize),
    SumAll(usize),
    MeanAll(usize),
    MeanRows(usize),
    SumRows(usize),
    RowSums(usize),
    AddRowBroadcast(usize, usize),
    MulColBroadcast(usize, usize),
    ConcatCols(usize, usize),
    ConcatRows(usize, usize),
    GatherRows(usize, Vec<usize>),
    SliceCols(usize, usize, usize),
    Dropout(usize, Vec<f32>),
    SliceRows(usize, usize, usize),
    GroupedAttention {
        q: usize,
        k: usize,
        v: usize,
        group: usize,
        scale: f32,
        /// Saved softmax weights, one `group`-sized block per query row
        /// (pool-granted n×group matrix, recycled at reset).
        weights: Matrix,
    },
    /// Fused multi-head grouped attention — see
    /// [`Tape::multi_head_grouped_attention`]. One node per layer consumes
    /// the packed Q/K/V projections through strided per-head views; the
    /// saved softmax weights are a pool-granted n×(heads·group) matrix laid
    /// out `[row][head][group]`, recycled at reset.
    MultiHeadGroupedAttention {
        q: usize,
        k: usize,
        v: usize,
        heads: usize,
        group: usize,
        scale: f32,
        weights: Matrix,
    },
    /// Fused `act(x·w + b)` — see [`Tape::linear_affine`].
    LinearAffine {
        x: usize,
        w: usize,
        b: usize,
        act: Activation,
    },
    /// Fused `cos(dt·ω + φ)` — see [`Tape::time_encode_fused`]. The Δt
    /// column is saved (pool-granted, recycled at reset) for the backward
    /// `dtᵀ·gs` product.
    TimeEncodeFused {
        omega: usize,
        phase: usize,
        dts: Matrix,
    },
    BceWithLogits {
        logits: usize,
        targets: Vec<f32>,
    },
    SoftmaxCrossEntropy {
        logits: usize,
        labels: Vec<usize>,
        probs: Matrix,
    },
}

struct Node {
    value: Matrix,
    op: Op,
}

/// One shape's free list plus the demand accounting behind the epoch trim.
#[derive(Default)]
struct ShapeBin {
    free: Vec<Vec<f32>>,
    /// Buffers taken since the last batch boundary — one batch's demand.
    takes_this_batch: usize,
    /// Max takes in any batch since the last trim: how many buffers this
    /// shape needs resident to serve a batch allocation-free.
    high_water: usize,
}

/// Shape-keyed recycler for node value storage. Buffers returned by
/// [`Tape::reset`] are handed back out by the forward ops of the next batch,
/// so steady-state training stops allocating per op.
///
/// A `BTreeMap` (not `HashMap`) keys the bins: the trim and accounting paths
/// iterate the map, and the deterministic-order policy from PR 4's audit
/// rule applies — iteration order must never depend on hash state.
#[derive(Default)]
struct BufferPool {
    by_shape: std::collections::BTreeMap<(usize, usize), ShapeBin>,
}

impl BufferPool {
    /// Per-shape retention cap: bounds steady-state memory while covering
    /// every distinct shape one batch's forward pass produces. The epoch
    /// trim ([`BufferPool::trim`]) tightens this to observed demand.
    const MAX_PER_SHAPE: usize = 32;

    fn take(&mut self, rows: usize, cols: usize) -> Option<Vec<f32>> {
        let bin = self.by_shape.entry((rows, cols)).or_default();
        bin.takes_this_batch += 1;
        let got = bin.free.pop();
        if got.is_some() {
            benchtemp_obs::counters::TAPE_POOL_HITS.incr();
        } else {
            benchtemp_obs::counters::TAPE_POOL_MISSES.incr();
        }
        got
    }

    fn put(&mut self, rows: usize, cols: usize, buf: Vec<f32>) {
        debug_assert_eq!(buf.len(), rows * cols);
        let bin = self.by_shape.entry((rows, cols)).or_default();
        if bin.free.len() < Self::MAX_PER_SHAPE {
            bin.free.push(buf);
        }
    }

    /// Close one batch's demand window: fold the batch take counts into the
    /// per-shape high-water marks.
    fn end_batch(&mut self) {
        for bin in self.by_shape.values_mut() {
            bin.high_water = bin.high_water.max(bin.takes_this_batch);
            bin.takes_this_batch = 0;
        }
    }

    /// Epoch-boundary trim: drop every free buffer beyond what the biggest
    /// batch since the last trim actually took, and forget shapes no batch
    /// touched. Restarts the high-water window.
    fn trim(&mut self) {
        self.end_batch();
        self.by_shape.retain(|_, bin| {
            bin.free.truncate(bin.high_water);
            let keep = bin.high_water > 0;
            bin.high_water = 0;
            keep
        });
    }

    /// Heap bytes resident in the free lists.
    fn resident_bytes(&self) -> u64 {
        self.by_shape
            .values()
            .flat_map(|bin| bin.free.iter())
            .map(|buf| (buf.capacity() * std::mem::size_of::<f32>()) as u64)
            .sum()
    }
}

/// Arena tape for one forward/backward round.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    pool: BufferPool,
    /// Matrices handed out by `alloc_raw`/`alloc_zeroed` since the last
    /// [`Tape::reset`]. Every one must become a node value (and so return
    /// to the buffer pool at the next reset); the sanitizer checks the
    /// balance against `absorbed_since_reset`.
    granted_since_reset: usize,
    /// Allocator-granted matrices recorded as node values since the last
    /// reset (every non-leaf `push`).
    absorbed_since_reset: usize,
    /// Δt-bits → first-row memo scratch for [`Tape::time_encode_fused`].
    /// Cleared (capacity kept) at the start of each call; lives on the tape
    /// so steady-state batches don't re-allocate it. Lookup-only — never
    /// iterated — so hash order can't leak into results.
    te_memo: std::collections::HashMap<u32, usize>,
}

impl Tape {
    pub fn new() -> Self {
        Tape {
            nodes: Vec::with_capacity(256),
            pool: BufferPool::default(),
            granted_since_reset: 0,
            absorbed_since_reset: 0,
            te_memo: std::collections::HashMap::new(),
        }
    }

    /// Number of recorded nodes (useful for budgeting in benches).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clear all nodes while keeping the node arena's capacity and
    /// recycling node value storage into the shape-keyed buffer pool, so
    /// the next forward pass allocates (almost) nothing.
    ///
    /// With `BENCHTEMP_SANITIZE=1` this is also the matrix-buffer leak
    /// check: every matrix granted by `alloc_raw`/`alloc_zeroed` must have
    /// been recorded as a node value (and is recycled here). A granted
    /// matrix that was dropped on an early-exit path instead would bleed
    /// pool storage every batch; the sanitizer turns that into a panic.
    pub fn reset(&mut self) {
        if crate::sanitize::enabled() {
            assert_eq!(
                self.granted_since_reset, self.absorbed_since_reset,
                "sanitize[tape]: matrix-buffer leak: {} matrices granted by the tape \
                 allocator since the last reset but only {} recorded as nodes — a \
                 forward-op path dropped pooled storage",
                self.granted_since_reset, self.absorbed_since_reset,
            );
        }
        self.granted_since_reset = 0;
        self.absorbed_since_reset = 0;
        self.pool.end_batch();
        for node in self.nodes.drain(..) {
            let (r, c) = node.value.shape();
            self.pool.put(r, c, node.value.into_vec());
            // Some fused ops carry a second pool-granted matrix beside the
            // output (the time-encode Δt column, the attention softmax
            // weights); recycle those too.
            match node.op {
                Op::TimeEncodeFused { dts, .. } => {
                    let (r, c) = dts.shape();
                    self.pool.put(r, c, dts.into_vec());
                }
                Op::GroupedAttention { weights, .. }
                | Op::MultiHeadGroupedAttention { weights, .. } => {
                    let (r, c) = weights.shape();
                    self.pool.put(r, c, weights.into_vec());
                }
                _ => {}
            }
        }
    }

    /// Epoch-boundary pool trim: shed every recycled buffer beyond the
    /// largest single-batch demand observed since the last trim (the
    /// unbounded-growth fix — long runs with many distinct shapes no longer
    /// hold peak RAM forever). Samples the `tape.pool_resident_bytes` gauge
    /// with the pre-trim footprint so `EfficiencyReport` sees the peak.
    pub fn trim_pool(&mut self) {
        benchtemp_obs::counters::TAPE_POOL_RESIDENT_BYTES.sample(self.pool.resident_bytes());
        self.pool.trim();
    }

    /// Heap bytes currently resident in the recycled buffer pool.
    pub fn pool_resident_bytes(&self) -> u64 {
        self.pool.resident_bytes()
    }

    /// Matrix with recycled (arbitrary-content) storage — for ops that
    /// overwrite every entry.
    fn alloc_raw(&mut self, rows: usize, cols: usize) -> Matrix {
        self.granted_since_reset += 1;
        match self.pool.take(rows, cols) {
            Some(buf) => Matrix::from_vec(rows, cols, buf),
            None => Matrix::zeros(rows, cols),
        }
    }

    /// Matrix with recycled zero-filled storage — for accumulation ops.
    fn alloc_zeroed(&mut self, rows: usize, cols: usize) -> Matrix {
        self.granted_since_reset += 1;
        match self.pool.take(rows, cols) {
            Some(buf) => {
                let mut m = Matrix::from_vec(rows, cols, buf);
                m.fill_zero();
                m
            }
            None => Matrix::zeros(rows, cols),
        }
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        benchtemp_obs::counters::TAPE_NODES_ALLOCATED.incr();
        // Leaves carry caller-provided storage; every other op's value came
        // from `alloc_raw`/`alloc_zeroed` (the leak-check balance).
        if !matches!(op, Op::Leaf) {
            self.absorbed_since_reset += 1;
        }
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Insert a constant/input/parameter leaf.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Leaf whose storage comes from the recycled buffer pool: copies `src`
    /// into a pooled buffer. Bit-identical to `leaf(src.clone())`, minus
    /// the steady-state allocation.
    pub fn leaf_copied(&mut self, src: &Matrix) -> Var {
        let (r, c) = src.shape();
        let mut m = self.alloc_raw(r, c);
        m.copy_from(src);
        // `push` skips the grant balance for leaves (they normally carry
        // caller storage); this leaf's storage is pool-granted, so count it.
        self.absorbed_since_reset += 1;
        self.push(m, Op::Leaf)
    }

    /// Read a node's value.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    // ---- elementwise & linear-algebra ops ------------------------------

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.zip_op(a, b, |x, y| x + y);
        self.push(value, Op::Add(a.0, b.0))
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.zip_op(a, b, |x, y| x - y);
        self.push(value, Op::Sub(a.0, b.0))
    }

    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.zip_op(a, b, |x, y| x * y);
        self.push(value, Op::Mul(a.0, b.0))
    }

    pub fn neg(&mut self, a: Var) -> Var {
        let value = self.map_op(a, |x| -x);
        self.push(value, Op::Neg(a.0))
    }

    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = self.map_op(a, |x| s * x);
        self.push(value, Op::Scale(a.0, s))
    }

    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let value = self.map_op(a, |x| x + s);
        self.push(value, Op::AddScalar(a.0))
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (m, _) = self.shape(a);
        let (_, n) = self.shape(b);
        let mut out = self.alloc_raw(m, n);
        self.nodes[a.0]
            .value
            .matmul_into(&self.nodes[b.0].value, &mut out);
        self.push(out, Op::MatMul(a.0, b.0))
    }

    pub fn transpose(&mut self, a: Var) -> Var {
        let (r, c) = self.shape(a);
        let mut out = self.alloc_raw(c, r);
        self.nodes[a.0].value.transpose_into(&mut out);
        self.push(out, Op::Transpose(a.0))
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.map_op(a, stable_sigmoid);
        self.push(value, Op::Sigmoid(a.0))
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.map_op(a, f32::tanh);
        self.push(value, Op::Tanh(a.0))
    }

    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.map_op(a, |x| x.max(0.0));
        self.push(value, Op::Relu(a.0))
    }

    pub fn exp(&mut self, a: Var) -> Var {
        let value = self.map_op(a, f32::exp);
        self.push(value, Op::Exp(a.0))
    }

    /// Natural log; inputs are clamped away from zero for stability.
    pub fn ln(&mut self, a: Var) -> Var {
        let value = self.map_op(a, |x| x.max(1e-12).ln());
        self.push(value, Op::Ln(a.0))
    }

    pub fn cos(&mut self, a: Var) -> Var {
        let value = self.map_op(a, f32::cos);
        self.push(value, Op::Cos(a.0))
    }

    /// Pooled elementwise map: recycled output, fused single pass.
    fn map_op(&mut self, a: Var, f: impl Fn(f32) -> f32) -> Matrix {
        let (r, c) = self.shape(a);
        let mut out = self.alloc_raw(r, c);
        self.nodes[a.0].value.map_into(&mut out, f);
        out
    }

    /// Pooled elementwise combine: recycled output, fused single pass.
    fn zip_op(&mut self, a: Var, b: Var, f: impl Fn(f32, f32) -> f32) -> Matrix {
        let (r, c) = self.shape(a);
        let mut out = self.alloc_raw(r, c);
        self.nodes[a.0]
            .value
            .zip_into(&self.nodes[b.0].value, &mut out, f);
        out
    }

    /// Row-wise softmax (numerically stabilized).
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let (rows, cols) = self.shape(a);
        let mut out = self.alloc_raw(rows, cols);
        let m = &self.nodes[a.0].value;
        for r in 0..rows {
            softmax_into(m.row(r), out.row_mut(r));
        }
        self.push(out, Op::SoftmaxRows(a.0))
    }

    // ---- reductions -----------------------------------------------------

    /// Sum of all entries → 1×1.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s = self.nodes[a.0].value.sum();
        let mut out = self.alloc_raw(1, 1);
        out.set(0, 0, s);
        self.push(out, Op::SumAll(a.0))
    }

    /// Mean of all entries → 1×1.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let m = &self.nodes[a.0].value;
        let s = m.sum() / m.len() as f32;
        let mut out = self.alloc_raw(1, 1);
        out.set(0, 0, s);
        self.push(out, Op::MeanAll(a.0))
    }

    /// Column means: n×m → 1×m.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let (rows, cols) = self.shape(a);
        let mut out = self.alloc_zeroed(1, cols);
        let m = &self.nodes[a.0].value;
        let _ = rows;
        for r in 0..m.rows() {
            for (o, &x) in out.row_mut(0).iter_mut().zip(m.row(r)) {
                *o += x;
            }
        }
        let inv = 1.0 / m.rows().max(1) as f32;
        out.as_mut_slice().iter_mut().for_each(|x| *x *= inv);
        self.push(out, Op::MeanRows(a.0))
    }

    /// Column sums: n×m → 1×m.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let (_, cols) = self.shape(a);
        let mut out = self.alloc_zeroed(1, cols);
        let m = &self.nodes[a.0].value;
        for r in 0..m.rows() {
            for (o, &x) in out.row_mut(0).iter_mut().zip(m.row(r)) {
                *o += x;
            }
        }
        self.push(out, Op::SumRows(a.0))
    }

    /// Per-row sums across columns: n×m → n×1.
    pub fn row_sums(&mut self, a: Var) -> Var {
        let (rows, _) = self.shape(a);
        let mut out = self.alloc_raw(rows, 1);
        let m = &self.nodes[a.0].value;
        for r in 0..m.rows() {
            out.set(r, 0, m.row(r).iter().sum());
        }
        self.push(out, Op::RowSums(a.0))
    }

    // ---- broadcasting ----------------------------------------------------

    /// `a (n×m) + b (1×m)` broadcast over rows (bias add).
    pub fn add_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        let shape = self.shape(a);
        let mut out = self.alloc_raw(shape.0, shape.1);
        let (am, bm) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(bm.rows(), 1, "add_row_broadcast: b must be 1×m");
        assert_eq!(am.cols(), bm.cols(), "add_row_broadcast: width mismatch");
        out.copy_from(am);
        for r in 0..out.rows() {
            for (o, &x) in out.row_mut(r).iter_mut().zip(bm.row(0)) {
                *o += x;
            }
        }
        self.push(out, Op::AddRowBroadcast(a.0, b.0))
    }

    /// `a (n×m) * c (n×1)` broadcast over columns (row-wise scaling).
    pub fn mul_col_broadcast(&mut self, a: Var, c: Var) -> Var {
        let shape = self.shape(a);
        let mut out = self.alloc_raw(shape.0, shape.1);
        let (am, cm) = (&self.nodes[a.0].value, &self.nodes[c.0].value);
        assert_eq!(cm.cols(), 1, "mul_col_broadcast: c must be n×1");
        assert_eq!(am.rows(), cm.rows(), "mul_col_broadcast: height mismatch");
        out.copy_from(am);
        for r in 0..out.rows() {
            let s = cm.get(r, 0);
            out.row_mut(r).iter_mut().for_each(|x| *x *= s);
        }
        self.push(out, Op::MulColBroadcast(a.0, c.0))
    }

    // ---- structural ops --------------------------------------------------

    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(ar, br, "concat_cols: row count mismatch");
        let mut out = self.alloc_raw(ar, ac + bc);
        let (am, bm) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        for r in 0..ar {
            out.row_mut(r)[..ac].copy_from_slice(am.row(r));
            out.row_mut(r)[ac..].copy_from_slice(bm.row(r));
        }
        self.push(out, Op::ConcatCols(a.0, b.0))
    }

    /// Horizontal concatenation of any number of vars.
    pub fn concat_cols_many(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "concat_cols_many: empty input");
        let mut acc = vars[0];
        for &v in &vars[1..] {
            acc = self.concat_cols(acc, v);
        }
        acc
    }

    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(ac, bc, "concat_rows: column count mismatch");
        let mut out = self.alloc_raw(ar + br, ac);
        let (am, bm) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        out.as_mut_slice()[..ar * ac].copy_from_slice(am.as_slice());
        out.as_mut_slice()[ar * ac..].copy_from_slice(bm.as_slice());
        self.push(out, Op::ConcatRows(a.0, b.0))
    }

    /// Gather rows (embedding lookup); backward scatter-adds.
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let (rows, cols) = self.shape(a);
        let mut out = self.alloc_raw(indices.len(), cols);
        let m = &self.nodes[a.0].value;
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < rows, "gather_rows: index {src} out of {rows} rows");
            out.row_mut(dst).copy_from_slice(m.row(src));
        }
        self.push(out, Op::GatherRows(a.0, indices.to_vec()))
    }

    /// Pooled SoA gather leaf: rows of an external matrix (node/edge
    /// feature tables, memory states) land in one pool-granted buffer via
    /// run-length-coalesced contiguous copies
    /// ([`Matrix::gather_rows_into`]), replacing the per-element scalar
    /// gather + `leaf` pair the models used to build. Each destination row
    /// is byte-for-byte the source row, so coalescing cannot change bits;
    /// the run count is a pure function of the index list and is ticked
    /// into `tape.gather_coalesced_runs`. Like `gather_rows` on a leaf,
    /// no gradient flows to `src`. With fusion disabled it emits exactly
    /// the allocating scalar path.
    pub fn gather_rows_from(&mut self, src: &Matrix, indices: &[usize]) -> Var {
        if !crate::fusion::enabled() {
            return self.leaf(src.gather_rows(indices));
        }
        let _span = benchtemp_obs::span("gather");
        let mut out = self.alloc_raw(indices.len(), src.cols());
        let runs = src.gather_rows_into(indices, &mut out);
        benchtemp_obs::counters::GATHER_COALESCED_RUNS.add(runs);
        benchtemp_obs::counters::FUSED_OPS_EXECUTED.incr();
        // Pool-granted storage behind a leaf: `push` skips leaves in the
        // grant balance (they normally carry caller storage), so count it —
        // same pattern as `leaf_copied`.
        self.absorbed_since_reset += 1;
        self.push(out, Op::Leaf)
    }

    /// Column slice `[start, end)`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let (rows, cols) = self.shape(a);
        assert!(
            start < end && end <= cols,
            "slice_cols: bad range {start}..{end}"
        );
        let mut out = self.alloc_raw(rows, end - start);
        let m = &self.nodes[a.0].value;
        for r in 0..rows {
            out.row_mut(r).copy_from_slice(&m.row(r)[start..end]);
        }
        self.push(out, Op::SliceCols(a.0, start, end))
    }

    /// Row slice `[start, end)` — one contiguous copy of the row range; the
    /// backward pass writes the gradient back into that range. This is how
    /// the tri-batched TGAT embedding splits the stacked src/dst/neg towers
    /// back apart.
    pub fn slice_rows(&mut self, a: Var, start: usize, end: usize) -> Var {
        let (rows, cols) = self.shape(a);
        assert!(
            start < end && end <= rows,
            "slice_rows: bad range {start}..{end}"
        );
        let mut out = self.alloc_raw(end - start, cols);
        let m = &self.nodes[a.0].value;
        out.as_mut_slice()
            .copy_from_slice(&m.as_slice()[start * cols..end * cols]);
        self.push(out, Op::SliceRows(a.0, start, end))
    }

    /// Inverted dropout with keep-probability `keep`; `rng01` supplies
    /// uniform [0,1) samples so the caller controls the RNG stream.
    pub fn dropout(&mut self, a: Var, keep: f32, rng01: &mut impl FnMut() -> f32) -> Var {
        assert!(keep > 0.0 && keep <= 1.0, "dropout: keep must be in (0,1]");
        let (rows, cols) = self.shape(a);
        let mut out = self.alloc_raw(rows, cols);
        let m = &self.nodes[a.0].value;
        let inv = 1.0 / keep;
        let mask: Vec<f32> = (0..m.len())
            .map(|_| if rng01() < keep { inv } else { 0.0 })
            .collect();
        for ((o, &x), &mk) in out
            .as_mut_slice()
            .iter_mut()
            .zip(m.as_slice())
            .zip(mask.iter())
        {
            *o = x * mk;
        }
        self.push(out, Op::Dropout(a.0, mask))
    }

    // ---- fused attention --------------------------------------------------

    /// Fused grouped scaled-dot-product attention.
    ///
    /// Query rows attend over fixed-size neighbor groups: `q` is n×d, `k` and
    /// `v` are (n·group)×d / (n·group)×dv, where rows `i·group .. (i+1)·group`
    /// of `k`/`v` are the candidates for query `i`. `mask[i*group+j] = false`
    /// excludes a padded neighbor. Rows whose mask is entirely false produce a
    /// zero output (and zero gradient), matching "no valid temporal neighbors".
    pub fn grouped_attention(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        group: usize,
        mask: &[bool],
    ) -> Var {
        let (n, d) = self.shape(q);
        let dv = self.shape(v).1;
        let mut out = self.alloc_zeroed(n, dv);
        let mut weights = self.alloc_raw(n, group);
        let scale = 1.0 / (d as f32).sqrt();
        {
            let (qm, km, vm) = (
                &self.nodes[q.0].value,
                &self.nodes[k.0].value,
                &self.nodes[v.0].value,
            );
            assert_eq!(km.rows(), n * group, "grouped_attention: k rows != n*group");
            assert_eq!(vm.rows(), n * group, "grouped_attention: v rows != n*group");
            assert_eq!(km.cols(), d, "grouped_attention: k width != q width");
            assert_eq!(mask.len(), n * group, "grouped_attention: mask length");
            run_attention_rows(
                qm,
                km,
                vm,
                1,
                group,
                d,
                dv,
                scale,
                mask,
                &mut out,
                &mut weights,
            );
        }
        // Two pool-granted matrices live in this node (output + saved
        // softmax weights); `push` only counts the output, so balance the
        // second.
        self.absorbed_since_reset += 1;
        self.push(
            out,
            Op::GroupedAttention {
                q: q.0,
                k: k.0,
                v: v.0,
                group,
                scale,
                weights,
            },
        )
    }

    /// Fused multi-head grouped attention: every head of one attention
    /// layer in a single tape node.
    ///
    /// `q` is n×model_dim and `k`/`v` are (n·group)×model_dim — the packed
    /// projections, consumed through strided per-head column views
    /// (`[h·hd, (h+1)·hd)` of each row, `hd = model_dim/heads`) instead of
    /// the `3×heads` `slice_cols` buffer copies the per-head chain makes.
    /// Head outputs land directly in their column stripe of the output, so
    /// the `concat_cols_many` disappears too, and the hand-derived backward
    /// writes each head's stripe straight into the shared Q/K/V gradient
    /// buffers.
    ///
    /// Bit-identical to the unfused per-head chain (`slice_cols`×3 →
    /// `grouped_attention` per head → `concat_cols_many`): each head's
    /// scores, softmax, and accumulation run the same floating-point
    /// operation order over the same values, stripes are disjoint, and a
    /// `+=` accumulation from a zeroed buffer never produces `-0.0`, so the
    /// unfused chain's cross-head gradient `add_assign` of disjoint-stripe
    /// zero matrices is an exact no-op (see DESIGN.md §12). With fusion
    /// disabled it emits exactly that chain.
    pub fn multi_head_grouped_attention(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        heads: usize,
        group: usize,
        mask: &[bool],
    ) -> Var {
        let (n, model_dim) = self.shape(q);
        assert!(
            heads > 0 && model_dim.is_multiple_of(heads),
            "multi_head_grouped_attention: model_dim must divide by heads"
        );
        if !crate::fusion::enabled() {
            let head_dim = model_dim / heads;
            let mut head_outs = Vec::with_capacity(heads);
            for h in 0..heads {
                let lo = h * head_dim;
                let hi = lo + head_dim;
                let qh = self.slice_cols(q, lo, hi);
                let kh = self.slice_cols(k, lo, hi);
                let vh = self.slice_cols(v, lo, hi);
                head_outs.push(self.grouped_attention(qh, kh, vh, group, mask));
            }
            return self.concat_cols_many(&head_outs);
        }
        let hd = model_dim / heads;
        let mut out = self.alloc_zeroed(n, model_dim);
        let mut weights = self.alloc_raw(n, heads * group);
        let scale = 1.0 / (hd as f32).sqrt();
        {
            let (qm, km, vm) = (
                &self.nodes[q.0].value,
                &self.nodes[k.0].value,
                &self.nodes[v.0].value,
            );
            assert_eq!(
                km.rows(),
                n * group,
                "multi_head_grouped_attention: k rows != n*group"
            );
            assert_eq!(
                vm.rows(),
                n * group,
                "multi_head_grouped_attention: v rows != n*group"
            );
            assert_eq!(
                km.cols(),
                model_dim,
                "multi_head_grouped_attention: k width != q width"
            );
            assert_eq!(
                vm.cols(),
                model_dim,
                "multi_head_grouped_attention: v width != q width"
            );
            assert_eq!(
                mask.len(),
                n * group,
                "multi_head_grouped_attention: mask length"
            );
            run_attention_rows(
                qm,
                km,
                vm,
                heads,
                group,
                hd,
                hd,
                scale,
                mask,
                &mut out,
                &mut weights,
            );
        }
        benchtemp_obs::counters::FUSED_OPS_EXECUTED.incr();
        // Output + saved softmax weights are both pool-granted; `push` only
        // counts the output.
        self.absorbed_since_reset += 1;
        self.push(
            out,
            Op::MultiHeadGroupedAttention {
                q: q.0,
                k: k.0,
                v: v.0,
                heads,
                group,
                scale,
                weights,
            },
        )
    }

    // ---- fused affine & time encoding -------------------------------------

    /// Fused `act(x·w + b)`: matmul, row-bias broadcast, and activation in
    /// one node and one output buffer, with a fused backward. Bit-identical
    /// to the chain `matmul` → `add_row_broadcast` → activation — the same
    /// matmul kernel fills the buffer and the epilogue applies
    /// `act(xw + b[j])` in the same per-element order the separate ops
    /// would (see DESIGN.md §11). With fusion disabled (`BENCHTEMP_FUSION=0`
    /// or [`crate::fusion::set_forced`]) it emits exactly that chain.
    pub fn linear_affine(&mut self, x: Var, w: Var, b: Var, act: Activation) -> Var {
        if !crate::fusion::enabled() {
            let xw = self.matmul(x, w);
            let t = self.add_row_broadcast(xw, b);
            return match act {
                Activation::None => t,
                Activation::Relu => self.relu(t),
                Activation::Sigmoid => self.sigmoid(t),
                Activation::Tanh => self.tanh(t),
            };
        }
        let (m, _) = self.shape(x);
        let n = self.shape(w).1;
        let mut out = self.alloc_raw(m, n);
        {
            let (xm, wm, bm) = (
                &self.nodes[x.0].value,
                &self.nodes[w.0].value,
                &self.nodes[b.0].value,
            );
            assert_eq!(bm.rows(), 1, "linear_affine: b must be 1×n");
            assert_eq!(bm.cols(), n, "linear_affine: bias width mismatch");
            xm.matmul_into(wm, &mut out);
            let brow = bm.row(0);
            crate::matrix::fill_rows_par(&mut out, m * n, |_r, row| {
                bias_act_epilogue(row, brow, act);
            });
        }
        benchtemp_obs::counters::FUSED_OPS_EXECUTED.incr();
        self.push(
            out,
            Op::LinearAffine {
                x: x.0,
                w: w.0,
                b: b.0,
                act,
            },
        )
    }

    /// Fused time encoding `cos(dt·ω + φ)` over a Δt slice: the outer
    /// product (n×1 · 1×d), bias broadcast, and cosine collapse into one
    /// node, replacing the four-node chain `leaf(column)` → `matmul` →
    /// `add_row_broadcast` → `cos`. Per element the fused pass computes
    /// `cos((0 + dt·ω_j) + φ_j)` — exactly the k=1 matmul accumulation
    /// followed by the broadcast add and `cos`, so the result is
    /// bit-identical to the unfused chain (emitted verbatim when fusion is
    /// off).
    ///
    /// Temporal batches repeat Δt values heavily, so rows are memoized by
    /// Δt bit pattern within the call: a repeated Δt copies the
    /// already-computed row, which is trivially bit-identical because the
    /// row is a function of `(dt, ω, φ)` alone.
    pub fn time_encode_fused(&mut self, dts: &[f32], omega: Var, phase: Var) -> Var {
        if !crate::fusion::enabled() {
            let col = self.leaf(Matrix::column(dts));
            let mm = self.matmul(col, omega);
            let t = self.add_row_broadcast(mm, phase);
            return self.cos(t);
        }
        let n = dts.len();
        let d = self.shape(omega).1;
        let mut out = self.alloc_raw(n, d);
        let mut col = self.alloc_raw(n, 1);
        col.as_mut_slice().copy_from_slice(dts);
        let mut memo = std::mem::take(&mut self.te_memo);
        memo.clear();
        let mut memo_hits = 0u64;
        {
            let (om, ph) = (&self.nodes[omega.0].value, &self.nodes[phase.0].value);
            assert_eq!(om.rows(), 1, "time_encode_fused: omega must be 1×d");
            assert_eq!(ph.shape(), (1, d), "time_encode_fused: phase must be 1×d");
            let (om_row, ph_row) = (om.row(0), ph.row(0));
            for (r, &dt) in dts.iter().enumerate() {
                match memo.entry(dt.to_bits()) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let src = *e.get();
                        memo_hits += 1;
                        out.as_mut_slice()
                            .copy_within(src * d..(src + 1) * d, r * d);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(r);
                        let row = out.row_mut(r);
                        for j in 0..d {
                            // k=1 matmul accumulation (0.0 + dt·ω, which the
                            // kernel's zero-init `+=` produces — not folded
                            // away, since 0.0 + x is not an f32 identity),
                            // then the bias broadcast, then cos.
                            let mut acc = 0.0f32;
                            acc += dt * om_row[j];
                            row[j] = (acc + ph_row[j]).cos();
                        }
                    }
                }
            }
        }
        self.te_memo = memo;
        if memo_hits > 0 {
            benchtemp_obs::counters::TIME_ENCODE_MEMO_HITS.add(memo_hits);
        }
        benchtemp_obs::counters::FUSED_OPS_EXECUTED.incr();
        // Two pool-granted matrices live in this node (output + saved Δt
        // column); `push` only counts the output, so balance the second.
        self.absorbed_since_reset += 1;
        self.push(
            out,
            Op::TimeEncodeFused {
                omega: omega.0,
                phase: phase.0,
                dts: col,
            },
        )
    }

    // ---- losses ------------------------------------------------------------

    /// Mean binary cross-entropy with logits; `logits` is n×1.
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32]) -> Var {
        let lm = &self.nodes[logits.0].value;
        assert_eq!(lm.cols(), 1, "bce_with_logits: logits must be n×1");
        assert_eq!(lm.rows(), targets.len(), "bce_with_logits: target count");
        let mut loss = 0.0f64;
        for (r, &y) in targets.iter().enumerate() {
            let x = lm.get(r, 0);
            // log(1+exp(-|x|)) + max(x,0) - x*y, the numerically stable form.
            loss += ((-x.abs()).exp().ln_1p() + x.max(0.0) - x * y) as f64;
        }
        let mut value = self.alloc_raw(1, 1);
        value.set(0, 0, (loss / targets.len().max(1) as f64) as f32);
        self.push(
            value,
            Op::BceWithLogits {
                logits: logits.0,
                targets: targets.to_vec(),
            },
        )
    }

    /// Mean softmax cross-entropy; `logits` is n×C, `labels[i] ∈ 0..C`.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Var {
        let lm = &self.nodes[logits.0].value;
        assert_eq!(
            lm.rows(),
            labels.len(),
            "softmax_cross_entropy: label count"
        );
        let mut probs = Matrix::zeros(lm.rows(), lm.cols());
        let mut loss = 0.0f64;
        for (r, &y) in labels.iter().enumerate() {
            assert!(
                y < lm.cols(),
                "softmax_cross_entropy: label {y} out of range"
            );
            softmax_into(lm.row(r), probs.row_mut(r));
            loss += -(probs.get(r, y).max(1e-12).ln()) as f64;
        }
        let mut value = self.alloc_raw(1, 1);
        value.set(0, 0, (loss / labels.len().max(1) as f64) as f32);
        self.push(
            value,
            Op::SoftmaxCrossEntropy {
                logits: logits.0,
                labels: labels.to_vec(),
                probs,
            },
        )
    }

    // ---- backward ------------------------------------------------------------

    /// Run reverse-mode differentiation from a scalar (1×1) output.
    /// Returns per-node gradients, queryable via [`Gradients::get`].
    pub fn backward(&mut self, output: Var) -> Gradients {
        assert_eq!(
            self.nodes[output.0].value.shape(),
            (1, 1),
            "backward: output must be a scalar (1x1) loss"
        );
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[output.0] = Some(Matrix::full(1, 1, 1.0));

        for i in (0..=output.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            // Reborrow pattern: compute parent contributions from node i.
            self.accumulate(i, &g, &mut grads);
            grads[i] = Some(g);
        }
        // Sanitizer: a NaN/Inf gradient anywhere poisons the next optimizer
        // step silently; fail loudly at the source instead.
        if crate::sanitize::enabled() {
            for (i, g) in grads.iter().enumerate() {
                if let Some(m) = g {
                    if let Some(bad) = m.as_slice().iter().find(|x| !x.is_finite()) {
                        panic!(
                            "sanitize[tape]: non-finite gradient {bad} at node {i} \
                             (shape {:?}) after backward",
                            m.shape(),
                        );
                    }
                }
            }
        }
        Gradients { grads }
    }

    fn accumulate(&self, i: usize, g: &Matrix, grads: &mut [Option<Matrix>]) {
        let node = &self.nodes[i];
        let mut bump = |idx: usize, delta: Matrix| match &mut grads[idx] {
            Some(acc) => acc.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        };
        match &node.op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                bump(*a, g.clone());
                bump(*b, g.clone());
            }
            Op::Sub(a, b) => {
                bump(*a, g.clone());
                bump(*b, g.map(|x| -x));
            }
            Op::Mul(a, b) => {
                bump(*a, g.zip(&self.nodes[*b].value, |gg, bb| gg * bb));
                bump(*b, g.zip(&self.nodes[*a].value, |gg, aa| gg * aa));
            }
            Op::Neg(a) => bump(*a, g.map(|x| -x)),
            Op::Scale(a, s) => bump(*a, g.map(|x| x * s)),
            Op::AddScalar(a) => bump(*a, g.clone()),
            Op::MatMul(a, b) => {
                bump(*a, g.matmul_transpose(&self.nodes[*b].value));
                bump(*b, self.nodes[*a].value.transpose_matmul(g));
            }
            Op::Transpose(a) => bump(*a, g.transpose()),
            Op::Sigmoid(a) => {
                bump(*a, g.zip(&node.value, |gg, y| gg * y * (1.0 - y)));
            }
            Op::Tanh(a) => {
                bump(*a, g.zip(&node.value, |gg, y| gg * (1.0 - y * y)));
            }
            Op::Relu(a) => {
                bump(
                    *a,
                    g.zip(
                        &self.nodes[*a].value,
                        |gg, x| if x > 0.0 { gg } else { 0.0 },
                    ),
                );
            }
            Op::Exp(a) => bump(*a, g.zip(&node.value, |gg, y| gg * y)),
            Op::Ln(a) => {
                bump(*a, g.zip(&self.nodes[*a].value, |gg, x| gg / x.max(1e-12)));
            }
            Op::Cos(a) => {
                bump(*a, g.zip(&self.nodes[*a].value, |gg, x| -gg * x.sin()));
            }
            Op::SoftmaxRows(a) => {
                let y = &node.value;
                let mut dx = Matrix::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let dot: f32 = g
                        .row(r)
                        .iter()
                        .zip(y.row(r))
                        .map(|(&gg, &yy)| gg * yy)
                        .sum();
                    for c in 0..y.cols() {
                        dx.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                    }
                }
                bump(*a, dx);
            }
            Op::SumAll(a) => {
                let (r, c) = self.nodes[*a].value.shape();
                bump(*a, Matrix::full(r, c, g.scalar()));
            }
            Op::MeanAll(a) => {
                let (r, c) = self.nodes[*a].value.shape();
                bump(*a, Matrix::full(r, c, g.scalar() / (r * c) as f32));
            }
            Op::MeanRows(a) => {
                let (r, c) = self.nodes[*a].value.shape();
                let inv = 1.0 / r.max(1) as f32;
                let mut dx = Matrix::zeros(r, c);
                for rr in 0..r {
                    for cc in 0..c {
                        dx.set(rr, cc, g.get(0, cc) * inv);
                    }
                }
                bump(*a, dx);
            }
            Op::SumRows(a) => {
                let (r, c) = self.nodes[*a].value.shape();
                let mut dx = Matrix::zeros(r, c);
                for rr in 0..r {
                    dx.row_mut(rr).copy_from_slice(g.row(0));
                }
                bump(*a, dx);
            }
            Op::RowSums(a) => {
                let (r, c) = self.nodes[*a].value.shape();
                let mut dx = Matrix::zeros(r, c);
                for rr in 0..r {
                    let gr = g.get(rr, 0);
                    dx.row_mut(rr).iter_mut().for_each(|x| *x = gr);
                }
                bump(*a, dx);
            }
            Op::AddRowBroadcast(a, b) => {
                bump(*a, g.clone());
                let mut db = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (o, &x) in db.row_mut(0).iter_mut().zip(g.row(r)) {
                        *o += x;
                    }
                }
                bump(*b, db);
            }
            Op::MulColBroadcast(a, c) => {
                let cm = &self.nodes[*c].value;
                let am = &self.nodes[*a].value;
                let mut da = g.clone();
                let mut dc = Matrix::zeros(cm.rows(), 1);
                for r in 0..g.rows() {
                    let s = cm.get(r, 0);
                    da.row_mut(r).iter_mut().for_each(|x| *x *= s);
                    let dot: f32 = g
                        .row(r)
                        .iter()
                        .zip(am.row(r))
                        .map(|(&gg, &aa)| gg * aa)
                        .sum();
                    dc.set(r, 0, dot);
                }
                bump(*a, da);
                bump(*c, dc);
            }
            Op::ConcatCols(a, b) => {
                let ac = self.nodes[*a].value.cols();
                let bc = self.nodes[*b].value.cols();
                let mut da = Matrix::zeros(g.rows(), ac);
                let mut db = Matrix::zeros(g.rows(), bc);
                for r in 0..g.rows() {
                    da.row_mut(r).copy_from_slice(&g.row(r)[..ac]);
                    db.row_mut(r).copy_from_slice(&g.row(r)[ac..]);
                }
                bump(*a, da);
                bump(*b, db);
            }
            Op::ConcatRows(a, b) => {
                let ar = self.nodes[*a].value.rows();
                let mut da = Matrix::zeros(ar, g.cols());
                let mut db = Matrix::zeros(g.rows() - ar, g.cols());
                for r in 0..ar {
                    da.row_mut(r).copy_from_slice(g.row(r));
                }
                for r in ar..g.rows() {
                    db.row_mut(r - ar).copy_from_slice(g.row(r));
                }
                bump(*a, da);
                bump(*b, db);
            }
            Op::GatherRows(a, indices) => {
                let (r, c) = self.nodes[*a].value.shape();
                let mut dx = Matrix::zeros(r, c);
                for (gr, &src) in indices.iter().enumerate() {
                    for (o, &x) in dx.row_mut(src).iter_mut().zip(g.row(gr)) {
                        *o += x;
                    }
                }
                bump(*a, dx);
            }
            Op::SliceCols(a, start, _end) => {
                let (r, c) = self.nodes[*a].value.shape();
                let mut dx = Matrix::zeros(r, c);
                for rr in 0..r {
                    dx.row_mut(rr)[*start..*start + g.cols()].copy_from_slice(g.row(rr));
                }
                bump(*a, dx);
            }
            Op::SliceRows(a, start, _end) => {
                let (r, c) = self.nodes[*a].value.shape();
                let mut dx = Matrix::zeros(r, c);
                dx.as_mut_slice()[*start * c..*start * c + g.len()].copy_from_slice(g.as_slice());
                bump(*a, dx);
            }
            Op::Dropout(a, mask) => {
                let mut dx = g.clone();
                for (o, &mk) in dx.as_mut_slice().iter_mut().zip(mask.iter()) {
                    *o *= mk;
                }
                bump(*a, dx);
            }
            Op::GroupedAttention {
                q,
                k,
                v,
                group,
                scale,
                weights,
            } => {
                let qm = &self.nodes[*q].value;
                let km = &self.nodes[*k].value;
                let vm = &self.nodes[*v].value;
                let n = qm.rows();
                let d = qm.cols();
                let mut dq = Matrix::zeros(n, d);
                let mut dk = Matrix::zeros(km.rows(), d);
                let mut dv = Matrix::zeros(vm.rows(), vm.cols());
                let mut da = vec![0.0f32; *group];
                let wts = weights.as_slice();
                #[allow(clippy::needless_range_loop)] // indices mirror the math
                for i in 0..n {
                    let g_row = g.row(i);
                    // dv_{ij} = a_j * g_i;  da_j = g_i · v_{ij}
                    let mut a_dot_da = 0.0f32;
                    for j in 0..*group {
                        let idx = i * group + j;
                        let w = wts[idx];
                        da[j] = g_row
                            .iter()
                            .zip(vm.row(idx))
                            .map(|(&gg, &vv)| gg * vv)
                            .sum();
                        a_dot_da += w * da[j];
                        if w != 0.0 {
                            for (o, &gg) in dv.row_mut(idx).iter_mut().zip(g_row) {
                                *o += w * gg;
                            }
                        }
                    }
                    // ds_j = a_j (da_j - Σ a_l da_l); dq += scale Σ ds_j k_j; dk_j += scale ds_j q
                    for j in 0..*group {
                        let idx = i * group + j;
                        let w = wts[idx];
                        if w == 0.0 {
                            continue;
                        }
                        let ds = w * (da[j] - a_dot_da) * scale;
                        for (o, &kk) in dq.row_mut(i).iter_mut().zip(km.row(idx)) {
                            *o += ds * kk;
                        }
                        for (o, &qq) in dk.row_mut(idx).iter_mut().zip(qm.row(i)) {
                            *o += ds * qq;
                        }
                    }
                }
                bump(*q, dq);
                bump(*k, dk);
                bump(*v, dv);
            }
            Op::MultiHeadGroupedAttention {
                q,
                k,
                v,
                heads,
                group,
                scale,
                weights,
            } => {
                // Per head this is exactly the GroupedAttention backward
                // above, applied to the `[h·hd, (h+1)·hd)` column stripe of
                // every packed row and writing straight into the shared
                // gradient buffers. In the unfused chain each head's
                // contribution is a disjoint column stripe padded with
                // zeros and summed across heads; because `+=` accumulation
                // from a zeroed buffer never yields `-0.0`, adding those
                // zero stripes is an exact no-op, so direct stripe writes
                // are bit-identical (DESIGN.md §12).
                let qm = &self.nodes[*q].value;
                let km = &self.nodes[*k].value;
                let vm = &self.nodes[*v].value;
                let n = qm.rows();
                let model_dim = qm.cols();
                let hd = model_dim / heads;
                let mut dq = Matrix::zeros(n, model_dim);
                let mut dk = Matrix::zeros(km.rows(), model_dim);
                let mut dv = Matrix::zeros(vm.rows(), vm.cols());
                let mut da = vec![0.0f32; *group];
                let wts = weights.as_slice();
                let w_w = heads * group;
                #[allow(clippy::needless_range_loop)] // indices mirror the math
                for i in 0..n {
                    for h in 0..*heads {
                        let g_seg = &g.row(i)[h * hd..(h + 1) * hd];
                        let mut a_dot_da = 0.0f32;
                        for j in 0..*group {
                            let idx = i * group + j;
                            let w = wts[i * w_w + h * group + j];
                            da[j] = g_seg
                                .iter()
                                .zip(&vm.row(idx)[h * hd..(h + 1) * hd])
                                .map(|(&gg, &vv)| gg * vv)
                                .sum();
                            a_dot_da += w * da[j];
                            if w != 0.0 {
                                for (o, &gg) in
                                    dv.row_mut(idx)[h * hd..(h + 1) * hd].iter_mut().zip(g_seg)
                                {
                                    *o += w * gg;
                                }
                            }
                        }
                        for j in 0..*group {
                            let idx = i * group + j;
                            let w = wts[i * w_w + h * group + j];
                            if w == 0.0 {
                                continue;
                            }
                            let ds = w * (da[j] - a_dot_da) * scale;
                            for (o, &kk) in dq.row_mut(i)[h * hd..(h + 1) * hd]
                                .iter_mut()
                                .zip(&km.row(idx)[h * hd..(h + 1) * hd])
                            {
                                *o += ds * kk;
                            }
                            for (o, &qq) in dk.row_mut(idx)[h * hd..(h + 1) * hd]
                                .iter_mut()
                                .zip(&qm.row(i)[h * hd..(h + 1) * hd])
                            {
                                *o += ds * qq;
                            }
                        }
                    }
                }
                bump(*q, dq);
                bump(*k, dk);
                bump(*v, dv);
            }
            Op::LinearAffine { x, w, b, act } => {
                let xm = &self.nodes[*x].value;
                let wm = &self.nodes[*w].value;
                let y = &node.value;
                let (m, n) = y.shape();
                // gp = g ⊙ act'(y), the derivative taken from the *output*
                // exactly as the unfused activation nodes compute it (for
                // ReLU, y > 0 ⟺ pre-activation > 0, so the output test is
                // bitwise equal to the unfused pre-activation test; sigmoid
                // and tanh backward already read the output). Row-parallel
                // through the claimed pool partition — each element is
                // written once, so worker count cannot change bits.
                let gp_owned: Option<Matrix> = match act {
                    // Identity activation: the incoming gradient passes
                    // through untouched, so skip the scratch copy entirely
                    // and feed `g` straight into the matmul backward.
                    Activation::None => None,
                    Activation::Relu => {
                        let mut gp = Matrix::zeros(m, n);
                        crate::matrix::fill_rows_par(&mut gp, m * n, |r, row| {
                            for ((o, &gg), &yy) in row.iter_mut().zip(g.row(r)).zip(y.row(r)) {
                                *o = if yy > 0.0 { gg } else { 0.0 };
                            }
                        });
                        Some(gp)
                    }
                    Activation::Sigmoid => {
                        let mut gp = Matrix::zeros(m, n);
                        crate::matrix::fill_rows_par(&mut gp, m * n, |r, row| {
                            for ((o, &gg), &yy) in row.iter_mut().zip(g.row(r)).zip(y.row(r)) {
                                *o = gg * yy * (1.0 - yy);
                            }
                        });
                        Some(gp)
                    }
                    Activation::Tanh => {
                        let mut gp = Matrix::zeros(m, n);
                        crate::matrix::fill_rows_par(&mut gp, m * n, |r, row| {
                            for ((o, &gg), &yy) in row.iter_mut().zip(g.row(r)).zip(y.row(r)) {
                                *o = gg * (1.0 - yy * yy);
                            }
                        });
                        Some(gp)
                    }
                };
                let gp: &Matrix = gp_owned.as_ref().unwrap_or(g);
                // Bias first: the unfused reverse walk reaches the broadcast
                // node before the matmul node. Same column-sum loop order.
                let mut db = Matrix::zeros(1, n);
                for r in 0..m {
                    for (o, &v) in db.row_mut(0).iter_mut().zip(gp.row(r)) {
                        *o += v;
                    }
                }
                bump(*b, db);
                bump(*x, gp.matmul_transpose(wm));
                bump(*w, xm.transpose_matmul(gp));
            }
            Op::TimeEncodeFused { omega, phase, dts } => {
                let om = &self.nodes[*omega].value;
                let ph = &self.nodes[*phase].value;
                let (om_row, ph_row) = (om.row(0), ph.row(0));
                let n = dts.rows();
                let d = om.cols();
                let dt_col = dts.as_slice();
                // gs = -g ⊙ sin(s) with s recomputed in the forward's exact
                // per-element order — the Cos backward rule applied to the
                // never-materialized pre-cos matrix. Row-parallel through
                // the claimed pool partition; one writer per element.
                let mut gs = Matrix::zeros(n, d);
                crate::matrix::fill_rows_par(&mut gs, 4 * n * d, |r, row| {
                    let dt = dt_col[r];
                    for (j, o) in row.iter_mut().enumerate() {
                        let mut acc = 0.0f32;
                        acc += dt * om_row[j];
                        let s = acc + ph_row[j];
                        *o = -g.get(r, j) * s.sin();
                    }
                });
                // Phase first (broadcast node precedes the matmul node in
                // the unfused reverse walk), then ω through the exact
                // `transpose_matmul` kernel the unfused matmul backward
                // uses. The Δt column is a non-trainable leaf in the
                // unfused chain, so its gradient is never queried and the
                // fused op skips computing it.
                let mut dph = Matrix::zeros(1, d);
                for r in 0..n {
                    for (o, &v) in dph.row_mut(0).iter_mut().zip(gs.row(r)) {
                        *o += v;
                    }
                }
                bump(*phase, dph);
                bump(*omega, dts.transpose_matmul(&gs));
            }
            Op::BceWithLogits { logits, targets } => {
                let lm = &self.nodes[*logits].value;
                let inv = g.scalar() / targets.len().max(1) as f32;
                let mut dx = Matrix::zeros(lm.rows(), 1);
                for (r, &y) in targets.iter().enumerate() {
                    dx.set(r, 0, (stable_sigmoid(lm.get(r, 0)) - y) * inv);
                }
                bump(*logits, dx);
            }
            Op::SoftmaxCrossEntropy {
                logits,
                labels,
                probs,
            } => {
                let inv = g.scalar() / labels.len().max(1) as f32;
                let mut dx = probs.clone();
                for (r, &y) in labels.iter().enumerate() {
                    let v = dx.get(r, y) - 1.0;
                    dx.set(r, y, v);
                }
                dx.as_mut_slice().iter_mut().for_each(|x| *x *= inv);
                bump(*logits, dx);
            }
        }
    }
}

/// Per-node gradients produced by [`Tape::backward`].
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. `v`; `None` if `v` did not influence it.
    pub fn get(&self, v: Var) -> Option<&Matrix> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Gradient of the loss w.r.t. `v`, or a zero matrix of the given shape.
    pub fn get_or_zero(&self, v: Var, shape: (usize, usize)) -> Matrix {
        self.get(v)
            .cloned()
            .unwrap_or_else(|| Matrix::zeros(shape.0, shape.1))
    }
}

/// Lane-blocked bias+activation epilogue of [`Tape::linear_affine`]:
/// fixed-width accumulator blocks the autovectorizer compiles to SIMD,
/// with a scalar remainder. Per element both paths compute exactly
/// `act(out[j] + bias[j])` — same order, same expression — so blocking
/// cannot change bits.
#[inline]
fn bias_act_epilogue(row: &mut [f32], bias: &[f32], act: Activation) {
    const L: usize = crate::matrix::LANES;
    let blocked = row.len() / L * L;
    let mut j = 0;
    while j < blocked {
        let o: &mut [f32; L] = (&mut row[j..j + L]).try_into().unwrap();
        let b: &[f32; L] = bias[j..j + L].try_into().unwrap();
        for l in 0..L {
            o[l] = act.apply(o[l] + b[l]);
        }
        j += L;
    }
    for (o, &bj) in row[blocked..].iter_mut().zip(&bias[blocked..]) {
        *o = act.apply(*o + bj);
    }
}

#[inline]
pub(crate) fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Forward pass of grouped attention over the query rows, shared by the
/// fused multi-head node and the single-head op (`heads = 1`): per-row
/// blocked-dot scores written into the softmax-weight row segment, in-place
/// softmax, and the value accumulation into the head's output stripe. Above
/// [`crate::matrix::PAR_FLOPS`] of work, contiguous row slabs fan out
/// across the worker pool under the claimed-slot protocol (the combined
/// claim space covers the output elements and, offset past them, the weight
/// elements). Each element is written by exactly one kernel call with an
/// FP order independent of where slab boundaries fall, so the thread count
/// cannot change result bits.
#[allow(clippy::too_many_arguments)]
fn run_attention_rows(
    qm: &Matrix,
    km: &Matrix,
    vm: &Matrix,
    heads: usize,
    group: usize,
    dk: usize,
    dv: usize,
    scale: f32,
    mask: &[bool],
    out: &mut Matrix,
    weights: &mut Matrix,
) {
    let _span = benchtemp_obs::span("attention");
    let n = qm.rows();
    if n == 0 {
        return;
    }
    let out_w = heads * dv;
    let w_w = heads * group;
    // Score + accumulate flops per query row ≈ 2·group·heads·(dk + dv).
    let work = 2 * n * group * heads * (dk + dv);
    let p = crate::pool::pool();
    if work < crate::matrix::PAR_FLOPS || p.threads() == 1 || n == 1 {
        attention_rows_kernel(
            qm,
            km,
            vm,
            heads,
            group,
            dk,
            dv,
            scale,
            mask,
            0,
            out.as_mut_slice(),
            weights.as_mut_slice(),
        );
        return;
    }
    let rows_per = n.div_ceil(p.threads()).max(1);
    let claims = attention_row_claims(n, out_w, w_w, rows_per);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
        .as_mut_slice()
        .chunks_mut(rows_per * out_w)
        .zip(weights.as_mut_slice().chunks_mut(rows_per * w_w))
        .enumerate()
        .map(|(c, (out_block, w_block))| {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                attention_rows_kernel(
                    qm,
                    km,
                    vm,
                    heads,
                    group,
                    dk,
                    dv,
                    scale,
                    mask,
                    c * rows_per,
                    out_block,
                    w_block,
                )
            });
            task
        })
        .collect();
    p.scope_run_claimed("grouped_attention_rows", &claims, tasks);
}

/// Sanitizer claims for the attention row-slab split. One combined claim
/// space covers both buffers each slab writes: slab `c` owns the flat
/// element range of its output rows, plus — offset past the whole output —
/// the flat element range of its softmax-weight rows. Mirrors the paired
/// `chunks_mut` partition in [`run_attention_rows`]. Empty when the
/// sanitizer is off.
fn attention_row_claims(
    n: usize,
    out_w: usize,
    w_w: usize,
    rows_per: usize,
) -> Vec<crate::sanitize::SlotClaim> {
    if !crate::sanitize::enabled() {
        return Vec::new();
    }
    let w_base = n * out_w;
    let mut claims = Vec::new();
    for (c, start) in (0..n).step_by(rows_per.max(1)).enumerate() {
        let end = (start + rows_per).min(n);
        claims.push((c, start * out_w..end * out_w));
        claims.push((c, w_base + start * w_w..w_base + end * w_w));
    }
    claims
}

/// One contiguous slab of attention query rows (`first` is the global index
/// of the slab's first row). `out_block` rows must arrive zeroed;
/// `w_block` rows are fully overwritten. Per head the scores go through
/// [`crate::matrix::dot`] — the same blocked-dot primitive as the matmul
/// kernels — then an in-place softmax, then the masked value accumulation,
/// all over strided per-head column views of the packed rows.
#[allow(clippy::too_many_arguments)]
fn attention_rows_kernel(
    qm: &Matrix,
    km: &Matrix,
    vm: &Matrix,
    heads: usize,
    group: usize,
    dk: usize,
    dv: usize,
    scale: f32,
    mask: &[bool],
    first: usize,
    out_block: &mut [f32],
    w_block: &mut [f32],
) {
    let out_w = heads * dv;
    let w_w = heads * group;
    for (r, (out_row, w_row)) in out_block
        .chunks_mut(out_w)
        .zip(w_block.chunks_mut(w_w))
        .enumerate()
    {
        let i = first + r;
        let q_row = qm.row(i);
        for h in 0..heads {
            let q_sub = &q_row[h * dk..(h + 1) * dk];
            let w_seg = &mut w_row[h * group..(h + 1) * group];
            #[allow(clippy::needless_range_loop)] // indices mirror the math
            for j in 0..group {
                let idx = i * group + j;
                w_seg[j] = if mask[idx] {
                    crate::matrix::dot(q_sub, &km.row(idx)[h * dk..(h + 1) * dk]) * scale
                } else {
                    f32::NEG_INFINITY
                };
            }
            // All-masked rows come out of the softmax as all-zero weights,
            // leaving the (pre-zeroed) output row untouched — "no valid
            // temporal neighbors" contributes nothing forward or backward.
            softmax_inplace(w_seg);
            let out_seg = &mut out_row[h * dv..(h + 1) * dv];
            for (j, &w) in w_seg.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let v_sub = &vm.row(i * group + j)[h * dv..(h + 1) * dv];
                for (o, &x) in out_seg.iter_mut().zip(v_sub) {
                    *o += w * x;
                }
            }
        }
    }
}

/// Numerically stable softmax of `src` into `dst` (handles -inf masking;
/// all -inf → all zeros).
pub(crate) fn softmax_into(src: &[f32], dst: &mut [f32]) {
    let max = src.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        dst.iter_mut().for_each(|x| *x = 0.0);
        return;
    }
    let mut sum = 0.0;
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        let e = (s - max).exp();
        *d = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    dst.iter_mut().for_each(|x| *x *= inv);
}

/// In-place [`softmax_into`]: the attention kernel writes scores into the
/// saved-weights row segment and softmaxes them where they sit, eliminating
/// the per-call scores scratch. Element-for-element the same floating-point
/// operation sequence as `softmax_into` (max fold, -inf short-circuit,
/// exp/accumulate, reciprocal scale), so routing through either is
/// bit-identical.
pub(crate) fn softmax_inplace(buf: &mut [f32]) {
    let max = buf.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        buf.iter_mut().for_each(|x| *x = 0.0);
        return;
    }
    let mut sum = 0.0;
    for d in buf.iter_mut() {
        let e = (*d - max).exp();
        *d = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    buf.iter_mut().for_each(|x| *x *= inv);
}

#[cfg(test)]
mod sanitize_tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::MutexGuard;

    /// `set_forced` is process-global; serialize the tests that flip it so
    /// a concurrent restore can't disarm another test's check window.
    fn forced_on() -> MutexGuard<'static, ()> {
        let guard = crate::sanitize::forced_test_lock();
        crate::sanitize::set_forced(Some(true));
        guard
    }

    #[test]
    fn leak_check_catches_granted_but_unrecorded_matrix() {
        let _serial = forced_on();
        let mut t = Tape::new();
        let a = t.leaf(Matrix::full(2, 2, 1.0));
        let _ = t.add(a, a);
        t.reset(); // balanced: granted == absorbed
        let _dropped = t.alloc_raw(2, 2); // granted, never pushed
        let r = catch_unwind(AssertUnwindSafe(|| t.reset()));
        crate::sanitize::set_forced(None);
        assert!(r.is_err(), "leaked tape buffer must fail the reset check");
    }

    #[test]
    fn backward_rejects_non_finite_gradients() {
        let _serial = forced_on();
        let mut t = Tape::new();
        // exp(200) overflows f32 → Inf value → Inf gradient on the input.
        let x = t.leaf(Matrix::full(1, 1, 200.0));
        let y = t.exp(x);
        let loss = t.sum_all(y);
        let r = catch_unwind(AssertUnwindSafe(|| t.backward(loss)));
        crate::sanitize::set_forced(None);
        assert!(r.is_err(), "Inf gradient must trip the sanitizer");
    }

    #[test]
    fn backward_accepts_finite_gradients_under_sanitize() {
        let _serial = forced_on();
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(3, 2, 0.5));
        let y = t.tanh(x);
        let loss = t.mean_all(y);
        let grads = t.backward(loss);
        assert!(grads.get(x).is_some());
        t.reset();
        crate::sanitize::set_forced(None);
    }
}
