//! Fused-op toggle for the tape execution engine, gated by
//! `BENCHTEMP_FUSION` (default **on**; set `BENCHTEMP_FUSION=0` to fall
//! back to the unfused primitive chains).
//!
//! Fusion is a pure execution-strategy switch: every fused op
//! ([`crate::tape::Tape::linear_affine`],
//! [`crate::tape::Tape::time_encode_fused`]) computes each output element
//! with the *same floating-point operation order* as the primitive chain it
//! replaces, so results are bit-identical either way (see DESIGN.md §11 for
//! the by-construction argument, and
//! `crates/tensor/tests/fused_equivalence.rs` for the enforcement). The
//! toggle exists so the equivalence suite and `bench_kernels` can compare
//! both paths in one process, and as an escape hatch while debugging.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Tri-state test/bench override: 0 = follow the environment, 1 = forced
/// off, 2 = forced on.
static FORCED: AtomicU8 = AtomicU8::new(0);

static ENV_ENABLED: OnceLock<bool> = OnceLock::new();

/// Is op fusion on? Reads `BENCHTEMP_FUSION` once per process (same policy
/// as `BENCHTEMP_THREADS`); tests and benches can override with
/// [`set_forced`]. Defaults to on — only an explicit `0` disables it.
pub fn enabled() -> bool {
    match FORCED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *ENV_ENABLED
            // audit-allow(determinism-taint-hot-path): read once via OnceLock and cached for the process lifetime; cannot vary within a run
            .get_or_init(|| !matches!(std::env::var("BENCHTEMP_FUSION"), Ok(v) if v.trim() == "0")),
    }
}

/// Test/bench hook: `Some(true)` forces fusion on, `Some(false)` forces it
/// off, `None` restores environment control. Not for production call sites —
/// the environment variable is the supported switch.
#[doc(hidden)]
pub fn set_forced(on: Option<bool>) {
    FORCED.store(
        match on {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        },
        Ordering::Relaxed,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_override_wins_over_env() {
        let _serial = crate::sanitize::forced_test_lock();
        set_forced(Some(true));
        assert!(enabled());
        set_forced(Some(false));
        assert!(!enabled());
        set_forced(None);
    }
}
