//! Optimizers. BenchTemp trains every model with Adam at lr 1e-4 and default
//! hyperparameters (§4.1); SGD is provided for ablations and tests.

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};

/// Adam optimizer (Kingma & Ba, 2014) with optional global-norm clipping.
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Clip gradients to this global L2 norm before the update (0 = off).
    pub clip_norm: f32,
    t: u64,
}

impl Adam {
    /// The paper's configuration: lr 1e-4, defaults otherwise (§4.1).
    pub fn paper_default() -> Self {
        Adam::new(1e-4)
    }

    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: 5.0,
            t: 0,
        }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one update from `(param, grad)` pairs harvested off a graph.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Matrix)]) {
        benchtemp_obs::counters::OPTIMIZER_STEPS.incr();
        self.t += 1;
        let clip_scale = self.clip_scale(grads);
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, grad) in grads {
            let p = &mut store.params[id.0];
            debug_assert_eq!(
                p.value.shape(),
                grad.shape(),
                "Adam: grad shape for {}",
                p.name
            );
            let (value, m, v) = (
                p.value.as_mut_slice(),
                p.m.as_mut_slice(),
                p.v.as_mut_slice(),
            );
            let gs = grad.as_slice();
            // Lane-blocked update: each element's moment/step arithmetic is
            // the exact expression of the scalar loop below (elements are
            // independent, so blocking cannot change bits). Non-finite
            // gradients substitute 0 into the lane so the block stays
            // branch-free, then the conditional writeback drops the lane —
            // preserving the skip semantics exactly.
            const L: usize = crate::matrix::LANES;
            let blocked = value.len() / L * L;
            let mut i = 0;
            while i < blocked {
                let gl: &[f32; L] = gs[i..i + L].try_into().unwrap();
                let ml: &mut [f32; L] = (&mut m[i..i + L]).try_into().unwrap();
                let vl: &mut [f32; L] = (&mut v[i..i + L]).try_into().unwrap();
                let wl: &mut [f32; L] = (&mut value[i..i + L]).try_into().unwrap();
                let mut fin = [false; L];
                let mut mn = [0.0f32; L];
                let mut vn = [0.0f32; L];
                let mut upd = [0.0f32; L];
                for l in 0..L {
                    let g = gl[l] * clip_scale;
                    fin[l] = g.is_finite();
                    let g = if fin[l] { g } else { 0.0 };
                    mn[l] = self.beta1 * ml[l] + (1.0 - self.beta1) * g;
                    vn[l] = self.beta2 * vl[l] + (1.0 - self.beta2) * g * g;
                    let m_hat = mn[l] / bc1;
                    let v_hat = vn[l] / bc2;
                    upd[l] = self.lr * m_hat / (v_hat.sqrt() + self.eps);
                }
                for l in 0..L {
                    if fin[l] {
                        ml[l] = mn[l];
                        vl[l] = vn[l];
                        wl[l] -= upd[l];
                    }
                }
                i += L;
            }
            for i in blocked..value.len() {
                let g = gs[i] * clip_scale;
                if !g.is_finite() {
                    continue; // never propagate NaN/inf into parameters
                }
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                value[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn clip_scale(&self, grads: &[(ParamId, Matrix)]) -> f32 {
        if self.clip_norm <= 0.0 {
            return 1.0;
        }
        let sq: f32 = grads
            .iter()
            .flat_map(|(_, g)| g.as_slice())
            .map(|&x| if x.is_finite() { x * x } else { 0.0 })
            .sum();
        let norm = sq.sqrt();
        if norm > self.clip_norm {
            self.clip_norm / norm
        } else {
            1.0
        }
    }
}

/// Plain SGD, used by tests to isolate optimizer effects.
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    pub fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Matrix)]) {
        for (id, grad) in grads {
            store.params[id.0].value.add_scaled(grad, -self.lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Graph;

    /// Minimize (w - 3)^2 with Adam; must converge near 3.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::full(1, 1, 0.0));
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            let mut g = Graph::new(&store);
            let wv = g.param(w);
            let c = g.input(Matrix::full(1, 1, 3.0));
            let d = g.sub(wv, c);
            let loss = {
                let sq = g.mul(d, d);
                g.sum_all(sq)
            };
            let grads = g.backward(loss);
            adam.step(&mut store, &grads);
        }
        let final_w = store.value(w).scalar();
        assert!((final_w - 3.0).abs() < 0.05, "w converged to {final_w}");
    }

    #[test]
    fn sgd_single_step_matches_hand_math() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::full(1, 1, 2.0));
        let mut sgd = Sgd::new(0.5);
        // loss = w^2, grad = 2w = 4, step: 2 - 0.5*4 = 0
        let mut g = Graph::new(&store);
        let wv = g.param(w);
        let sq = g.mul(wv, wv);
        let loss = g.sum_all(sq);
        let grads = g.backward(loss);
        sgd.step(&mut store, &grads);
        assert!((store.value(w).scalar()).abs() < 1e-6);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::full(1, 1, 0.0));
        let mut adam = Adam::new(1.0);
        adam.clip_norm = 1.0;
        let grads = vec![(w, Matrix::full(1, 1, 1000.0))];
        adam.step(&mut store, &grads);
        // First Adam step magnitude is ≈ lr regardless, but the clipped grad
        // must have fed the moments: m == beta-weighted clipped grad.
        assert!(store.params[w.0].m.scalar() <= 0.11);
    }

    #[test]
    fn nan_gradients_are_skipped() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::full(1, 1, 1.5));
        let mut adam = Adam::new(0.1);
        adam.clip_norm = 0.0;
        let grads = vec![(w, Matrix::full(1, 1, f32::NAN))];
        adam.step(&mut store, &grads);
        assert_eq!(store.value(w).scalar(), 1.5);
    }

    #[test]
    fn lane_blocked_update_skips_non_finite_inside_blocks() {
        // 19 elements: two full lane blocks + a 3-wide scalar tail. One bad
        // gradient inside a block and one in the tail must both leave their
        // element (value AND moments) untouched while neighbors update.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::full(1, 19, 1.0));
        let mut adam = Adam::new(0.1);
        adam.clip_norm = 0.0;
        let mut g = vec![0.5f32; 19];
        g[3] = f32::NAN;
        g[17] = f32::INFINITY;
        let grads = vec![(w, Matrix::from_vec(1, 19, g))];
        adam.step(&mut store, &grads);
        let vals = store.value(w).as_slice();
        assert_eq!(vals[3], 1.0, "NaN lane must not write back");
        assert_eq!(vals[17], 1.0, "Inf tail element must not write back");
        assert!(vals[0] < 1.0 && vals[18] < 1.0, "finite lanes must update");
        assert_eq!(store.params[w.0].m.get(0, 3), 0.0);
        assert_eq!(store.params[w.0].v.get(0, 17), 0.0);
    }
}
