//! # benchtemp-tensor
//!
//! A self-contained CPU tensor library with reverse-mode automatic
//! differentiation — the substrate every TGNN in the BenchTemp reproduction
//! trains on. The paper ran on PyTorch + CUDA; this crate supplies the same
//! semantics (dense f32 math, tape autograd, Adam, BCE/CE losses, the layer
//! set the seven models need) in pure Rust with zero native dependencies.
//!
//! ## Quick tour
//!
//! ```
//! use benchtemp_tensor::{Matrix, ParamStore, Graph, Adam, nn::Mlp, init};
//!
//! let mut store = ParamStore::new();
//! let mut rng = init::rng(0);
//! let mlp = Mlp::new(&mut store, &mut rng, "demo", 2, 8, 1);
//! let mut adam = Adam::paper_default();
//!
//! let mut g = Graph::new(&store);
//! let x = g.input(Matrix::from_rows(&[&[0.0, 1.0]]));
//! let logits = mlp.forward(&mut g, x);
//! let loss = g.bce_with_logits(logits, &[1.0]);
//! let grads = g.backward(loss);
//! adam.step(&mut store, &grads);
//! ```

pub mod checkpoint;
pub mod fusion;
pub mod init;
pub mod matrix;
pub mod nn;
pub mod optim;
pub mod params;
pub mod pool;
pub mod rng;
pub mod sanitize;
pub mod tape;

pub use checkpoint::{load_checkpoint, save_checkpoint};
pub use matrix::Matrix;
pub use optim::{Adam, Sgd};
pub use params::{Graph, ParamId, ParamStore};
pub use pool::{pool, ThreadPool};
pub use rng::{Pcg32, SplitMix64};
pub use tape::{Activation, Gradients, Tape, Var};
