//! Deterministic weight initialization.
//!
//! BenchTemp's protocol (§4.1) runs every job under explicit seeds and
//! reports mean ± std over runs, so every random draw here flows from a
//! caller-supplied seed.

use crate::matrix::Matrix;
use crate::rng::Pcg32;

/// Seeded RNG used across the suite; a thin alias so downstream crates don't
/// spell out the generator type.
pub type SeededRng = Pcg32;

/// Build a [`SeededRng`] from a u64 seed.
pub fn rng(seed: u64) -> SeededRng {
    Pcg32::seed_from_u64(seed)
}

/// Xavier/Glorot uniform initialization: U(-a, a) with a = sqrt(6/(fan_in+fan_out)).
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut SeededRng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Standard normal entries scaled by `std`.
pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut SeededRng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| std * standard_normal(rng))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Uniform entries in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut SeededRng) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// One standard-normal sample via Box–Muller.
pub fn standard_normal(rng: &mut SeededRng) -> f32 {
    let u1: f32 = rng.gen_range(1e-7f32..1.0);
    let u2: f32 = rng.gen_range(0.0f32..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let a = xavier_uniform(8, 8, &mut rng(7));
        let b = xavier_uniform(8, 8, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_weights() {
        let a = xavier_uniform(8, 8, &mut rng(7));
        let b = xavier_uniform(8, 8, &mut rng(8));
        assert_ne!(a, b);
    }

    #[test]
    fn xavier_respects_bound() {
        let m = xavier_uniform(10, 20, &mut rng(1));
        let a = (6.0f32 / 30.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn randn_roughly_centered() {
        let m = randn(100, 100, 1.0, &mut rng(3));
        let mean = m.sum() / m.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        let var = m
            .as_slice()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / m.len() as f32;
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }
}
