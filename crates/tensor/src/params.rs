//! Parameter storage and the forward-pass [`Graph`] context.
//!
//! Parameters live in a [`ParamStore`] across training steps. Each step
//! builds a fresh [`Graph`] (a [`Tape`] plus lazy parameter bindings), runs
//! the forward pass, calls [`Graph::backward`], and hands the harvested
//! `(ParamId, gradient)` pairs to an optimizer.

use std::ops::{Deref, DerefMut};

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};

/// Stable handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Positional index inside the owning store (stable; useful for
    /// snapshot indexing and reporting).
    pub fn index(&self) -> usize {
        self.0
    }
}

pub(crate) struct Param {
    pub name: String,
    pub value: Matrix,
    /// Adam first-moment estimate.
    pub m: Matrix,
    /// Adam second-moment estimate.
    pub v: Matrix,
}

/// Owns every trainable parameter of a model.
#[derive(Default)]
pub struct ParamStore {
    pub(crate) params: Vec<Param>,
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter; the name is for debugging/reporting only.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.params.push(Param {
            name: name.into(),
            value,
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        });
        ParamId(self.params.len() - 1)
    }

    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Heap bytes held by parameter values + optimizer state.
    pub fn heap_bytes(&self) -> usize {
        self.params
            .iter()
            .map(|p| p.value.heap_bytes() + p.m.heap_bytes() + p.v.heap_bytes())
            .sum()
    }

    /// Snapshot all parameter values (used by EarlyStopMonitor best-restore).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.params.iter().map(|p| p.value.clone()).collect()
    }

    /// Restore from a snapshot taken earlier.
    pub fn restore(&mut self, snapshot: &[Matrix]) {
        assert_eq!(
            snapshot.len(),
            self.params.len(),
            "restore: snapshot size mismatch"
        );
        for (p, s) in self.params.iter_mut().zip(snapshot) {
            assert_eq!(
                p.value.shape(),
                s.shape(),
                "restore: shape mismatch for {}",
                p.name
            );
            p.value = s.clone();
        }
    }
}

thread_local! {
    /// Recycled tapes: a dropped [`Graph`] parks its tape (reset, with node
    /// capacity and its matrix buffer pool intact) plus its binding scratch
    /// here, and the next `Graph::new` on this thread picks both up.
    /// Per-batch graph construction in the training loops therefore stops
    /// churning the allocator without any call-site changes.
    static TAPE_CACHE: std::cell::RefCell<Vec<(Tape, Vec<Option<Var>>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Epoch-boundary hook: apply the buffer-pool high-water trim
/// ([`Tape::trim_pool`]) to every tape parked on this thread's recycle
/// cache. Tapes parked on *other* threads (pool workers running parallel
/// eval) keep their buffers until their own threads trim; the training-loop
/// tape — the one that grows — lives on the caller's thread.
pub fn trim_tape_caches() {
    TAPE_CACHE.with(|c| {
        for (tape, _) in c.borrow_mut().iter_mut() {
            tape.trim_pool();
        }
    });
}

/// Owns a recycled tape (+ binding scratch) and parks both back in
/// [`TAPE_CACHE`] on drop.
///
/// The recycling `Drop` lives on this lifetime-free wrapper — not on
/// [`Graph`] itself — so the borrow checker still ends a graph's `&ParamStore`
/// borrow at its last use (dropping a `&T` field needs no liveness), and
/// call sites can keep mutating the store while a finished graph is in scope.
struct PooledTape {
    tape: Tape,
    bound: Vec<Option<Var>>,
}

impl Drop for PooledTape {
    fn drop(&mut self) {
        let mut tape = std::mem::take(&mut self.tape);
        tape.reset();
        let mut bound = std::mem::take(&mut self.bound);
        bound.clear();
        TAPE_CACHE.with(|c| {
            let mut cache = c.borrow_mut();
            // A handful of tapes covers nested graphs; don't hoard beyond that.
            if cache.len() < 4 {
                cache.push((tape, bound));
            }
        });
    }
}

/// Forward-pass context: a tape plus memoized parameter bindings.
pub struct Graph<'s> {
    tape: PooledTape,
    store: &'s ParamStore,
}

impl<'s> Graph<'s> {
    pub fn new(store: &'s ParamStore) -> Self {
        let (tape, mut bound) = TAPE_CACHE
            .with(|c| c.borrow_mut().pop())
            .unwrap_or_default();
        debug_assert!(tape.is_empty(), "recycled tape must be reset");
        debug_assert!(bound.is_empty(), "recycled binding scratch must be clear");
        bound.resize(store.len(), None);
        Graph {
            tape: PooledTape { tape, bound },
            store,
        }
    }

    /// Bind a parameter onto the tape (once per graph; later calls return
    /// the same [`Var`] so gradients accumulate correctly). The leaf copy
    /// lands in pooled storage, so steady-state batches re-bind without
    /// allocating.
    pub fn param(&mut self, id: ParamId) -> Var {
        if let Some(v) = self.tape.bound[id.0] {
            return v;
        }
        let v = self.tape.tape.leaf_copied(self.store.value(id));
        self.tape.bound[id.0] = Some(v);
        v
    }

    /// Insert a non-trainable input.
    pub fn input(&mut self, value: Matrix) -> Var {
        self.tape.tape.leaf(value)
    }

    /// Insert a non-trainable input by copy into pooled storage — the
    /// allocation-free twin of [`Graph::input`] for callers that keep the
    /// source matrix around.
    pub fn input_from(&mut self, value: &Matrix) -> Var {
        self.tape.tape.leaf_copied(value)
    }

    /// Backward pass from a scalar loss; returns gradients for every bound
    /// parameter (zero matrices for parameters the loss never touched).
    pub fn backward(&mut self, loss: Var) -> Vec<(ParamId, Matrix)> {
        let grads = self.tape.tape.backward(loss);
        let mut out = Vec::new();
        for (i, slot) in self.tape.bound.iter().enumerate() {
            if let Some(var) = slot {
                let shape = self.tape.tape.shape(*var);
                out.push((ParamId(i), grads.get_or_zero(*var, shape)));
            }
        }
        out
    }
}

impl Deref for Graph<'_> {
    type Target = Tape;
    fn deref(&self) -> &Tape {
        &self.tape.tape
    }
}

impl DerefMut for Graph<'_> {
    fn deref_mut(&mut self) -> &mut Tape {
        &mut self.tape.tape
    }
}
