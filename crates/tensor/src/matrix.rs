//! Dense row-major `f32` matrix — the storage type underneath the autograd
//! tape. Kept deliberately small: BenchTemp's models only need 2-D tensors
//! (batches of node embeddings), so everything is a matrix.

use std::fmt;

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Build from a flat row-major vector. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: {} values cannot fill a {}x{} matrix",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from nested slices (row per slice); useful in tests.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Column vector (n×1) from a slice.
    pub fn column(values: &[f32]) -> Self {
        Matrix { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Row vector (1×n) from a slice.
    pub fn row_vec(values: &[f32]) -> Self {
        Matrix { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy `src` into row `r`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "set_row: width mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Matrix product `self · rhs` with a blocked inner loop (ikj order) —
    /// cache-friendly without pulling in a BLAS dependency.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} · {}x{} shapes are incompatible",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · rhsᵀ` without materializing the transpose.
    pub fn matmul_transpose(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transpose: inner dims {} vs {} differ",
            self.cols, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ · rhs` without materializing the transpose.
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "transpose_matmul: outer dims {} vs {} differ",
            self.rows, rhs.rows
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        let n = rhs.cols;
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combine with another same-shape matrix.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(rhs.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self += rhs` elementwise.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// `self += scale * rhs` elementwise (axpy).
    pub fn add_scaled(&mut self, rhs: &Matrix, scale: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += scale * b;
        }
    }

    /// Set every entry to zero (reuse the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Extract a single scalar from a 1×1 matrix.
    pub fn scalar(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar: matrix is {}x{}", self.rows, self.cols);
        self.data[0]
    }

    /// Gather the listed rows into a new matrix (repeat indices allowed).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "gather_rows: index {src} out of {} rows", self.rows);
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn concat_cols(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "concat_cols: row count mismatch");
        let cols = self.cols + rhs.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Vertical concatenation `[self ; rhs]`.
    pub fn concat_rows(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "concat_rows: column count mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Matrix { rows: self.rows + rhs.rows, cols: self.cols, data }
    }

    /// Approximate equality for tests.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f32) -> bool {
        self.shape() == rhs.shape()
            && self.data.iter().zip(rhs.data.iter()).all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Heap bytes held by this matrix (for the efficiency accounting).
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[5.0, 5.0], &[2.0, 3.0]]);
        assert_eq!(a.matmul(&b), Matrix::from_rows(&[&[5.0, 7.0]]));
    }

    #[test]
    fn matmul_transpose_equals_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[1.0, 2.0, 3.0]]);
        assert!(a.matmul_transpose(&b).approx_eq(&a.matmul(&b.transpose()), 1e-6));
    }

    #[test]
    fn transpose_matmul_equals_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0], &[8.0], &[9.0]]);
        assert!(a.transpose_matmul(&b).approx_eq(&a.transpose().matmul(&b), 1e-6));
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(a.matmul(&Matrix::identity(2)).approx_eq(&a, 1e-7));
        assert!(Matrix::identity(2).matmul(&a).approx_eq(&a, 1e-7));
    }

    #[test]
    fn gather_rows_repeats_and_reorders() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g, Matrix::from_rows(&[&[3.0, 3.0], &[1.0, 1.0], &[3.0, 3.0]]));
    }

    #[test]
    fn concat_cols_and_rows() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        assert_eq!(a.concat_cols(&b), Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
        assert_eq!(
            a.concat_rows(&b),
            Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]])
        );
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_sum_norm() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.sum(), 7.0);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        assert_eq!(Matrix::full(1, 1, 2.5).scalar(), 2.5);
    }
}
