//! Dense row-major `f32` matrix — the storage type underneath the autograd
//! tape. Kept deliberately small: BenchTemp's models only need 2-D tensors
//! (batches of node embeddings), so everything is a matrix.

// audit-allow-file(hot-path-alloc-reachability): matrix constructors allocate
// their backing `Vec<f32>` by design, and the parallel kernel dispatch boxes
// per-task closures; the zero-alloc pins cover the in-place gather/epilogue
// kernels, which operate entirely on caller-provided storage.

use std::fmt;

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a flat row-major vector. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: {} values cannot fill a {}x{} matrix",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from nested slices (row per slice); useful in tests.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Column vector (n×1) from a slice.
    pub fn column(values: &[f32]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Row vector (1×n) from a slice.
    pub fn row_vec(values: &[f32]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy `src` into row `r`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "set_row: width mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Matrix product `self · rhs`.
    ///
    /// Uses a register-blocked microkernel (k tiled in fours, branch-free
    /// inner loop) and partitions output rows across the worker pool above
    /// [`PAR_FLOPS`]. Every output row is produced by the same sequential
    /// kernel regardless of partitioning, so results are bit-identical at
    /// any thread count.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// `self · rhs` written into a preallocated `out` (shape-checked).
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} · {}x{} shapes are incompatible",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul_into: output is {}x{}, expected {}x{}",
            out.rows,
            out.cols,
            self.rows,
            rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        if n == 0 || m == 0 {
            return;
        }
        benchtemp_obs::counters::MATMUL_FLOPS.add(2 * (m * k * n) as u64);
        run_row_blocks(m, n, m * k * n, &mut out.data, |first, block| {
            matmul_block_kernel(&self.data, k, first, &rhs.data, n, block);
        });
    }

    /// `self · rhsᵀ` without materializing the transpose.
    ///
    /// Row-parallel above [`PAR_FLOPS`]; each output entry is a four-way
    /// blocked dot product, identical on every code path.
    pub fn matmul_transpose(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transpose: inner dims {} vs {} differ",
            self.cols, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 {
            return out;
        }
        benchtemp_obs::counters::MATMUL_FLOPS.add(2 * (m * k * n) as u64);
        run_rows(m, n, m * k * n, &mut out.data, |i, out_row| {
            let a_row = self.row(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = dot(a_row, rhs.row(j));
            }
        });
        out
    }

    /// `selfᵀ · rhs` without materializing the transpose.
    ///
    /// Partitioned over output rows (columns of `self`); the strided loads
    /// of `self` are amortized by the same k-tiled microkernel as `matmul`.
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "transpose_matmul: outer dims {} vs {} differ",
            self.rows, rhs.rows
        );
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 {
            return out;
        }
        benchtemp_obs::counters::MATMUL_FLOPS.add(2 * (m * k * n) as u64);
        let a_cols = self.cols;
        run_rows(m, n, m * k * n, &mut out.data, |i, out_row| {
            transpose_matmul_row_kernel(&self.data, a_cols, i, k, &rhs.data, n, out_row);
        });
        out
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose written into a preallocated `cols×rows` output.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose_into: output is {}x{}, expected {}x{}",
            out.rows,
            out.cols,
            self.cols,
            self.rows
        );
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise map written into a preallocated same-shape `out` —
    /// the allocation-free twin of [`Matrix::map`] used by the tape.
    pub fn map_into(&self, out: &mut Matrix, f: impl Fn(f32) -> f32) {
        assert_eq!(self.shape(), out.shape(), "map_into: shape mismatch");
        for (o, &x) in out.data.iter_mut().zip(self.data.iter()) {
            *o = f(x);
        }
    }

    /// Elementwise map applied in place (fused activation).
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data.iter_mut() {
            *x = f(*x);
        }
    }

    /// Elementwise combine with another same-shape matrix.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise combine written into a preallocated same-shape `out`.
    pub fn zip_into(&self, rhs: &Matrix, out: &mut Matrix, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(self.shape(), rhs.shape(), "zip_into: shape mismatch");
        assert_eq!(self.shape(), out.shape(), "zip_into: output shape mismatch");
        for ((o, &a), &b) in out
            .data
            .iter_mut()
            .zip(self.data.iter())
            .zip(rhs.data.iter())
        {
            *o = f(a, b);
        }
    }

    /// `self *= scale` in place.
    pub fn scale_inplace(&mut self, scale: f32) {
        for x in self.data.iter_mut() {
            *x *= scale;
        }
    }

    /// Copy `src`'s contents into `self` (shapes must match).
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(self.shape(), src.shape(), "copy_from: shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// `self += rhs` elementwise.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// `self += scale * rhs` elementwise (axpy).
    pub fn add_scaled(&mut self, rhs: &Matrix, scale: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += scale * b;
        }
    }

    /// Set every entry to zero (reuse the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Extract a single scalar from a 1×1 matrix.
    pub fn scalar(&self) -> f32 {
        assert_eq!(
            self.shape(),
            (1, 1),
            "scalar: matrix is {}x{}",
            self.rows,
            self.cols
        );
        self.data[0]
    }

    /// Gather the listed rows into a new matrix (repeat indices allowed).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(
                src < self.rows,
                "gather_rows: index {src} out of {} rows",
                self.rows
            );
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Gather the listed rows into a preallocated `indices.len()×cols`
    /// output, coalescing index runs into contiguous block copies — the
    /// SoA fast path under the tape's pooled gather leaf.
    ///
    /// Frontier slot indices arrive with long structured stretches
    /// (ascending CSR neighbors, repeated node-0 padding), so instead of one
    /// `copy_from_slice` per destination row this first resolves the index
    /// list into maximal runs — ascending-consecutive (`idx[i+1] == idx[i]+1`,
    /// one memcpy of `len·cols`) or repeated (`idx[i+1] == idx[i]`, copy once
    /// then replicate) — and issues one block move per run. Above
    /// [`PAR_FLOPS`] copied elements, contiguous run groups fan out across
    /// the worker pool under the claimed-slot protocol; every destination
    /// element is written by exactly one plain copy regardless of the
    /// partition, so results are byte-identical to [`Matrix::gather_rows`]
    /// at any thread count.
    ///
    /// Returns the coalesced run count — a pure function of `indices`
    /// (computed by one sequential scan, never of the thread partition), so
    /// counters fed from it are thread-count-invariant.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) -> u64 {
        assert_eq!(
            out.shape(),
            (indices.len(), self.cols),
            "gather_rows_into: output is {}x{}, expected {}x{}",
            out.rows,
            out.cols,
            indices.len(),
            self.cols
        );
        if let Some(&bad) = indices.iter().find(|&&src| src >= self.rows) {
            panic!("gather_rows_into: index {bad} out of {} rows", self.rows);
        }
        let cols = self.cols;
        let total = indices.len() * cols;
        let p = crate::pool::pool();
        if cols == 0 || total < PAR_FLOPS || p.threads() == 1 {
            // Streaming inline path: resolve and copy one run at a time so
            // the steady state performs no heap allocation at all.
            let mut count = 0u64;
            let mut i = 0;
            while i < indices.len() {
                let run = next_gather_run(indices, i);
                if cols > 0 {
                    gather_runs_kernel(
                        &self.data,
                        cols,
                        std::slice::from_ref(&run),
                        0,
                        &mut out.data,
                    );
                }
                i += run.len;
                count += 1;
            }
            return count;
        }
        let runs = coalesce_gather_runs(indices);
        if runs.len() == 1 {
            gather_runs_kernel(&self.data, cols, &runs, 0, &mut out.data);
            return 1;
        }
        // Group whole runs into contiguous destination slabs of roughly
        // `rows_per` rows each; runs never straddle a slab boundary, so each
        // block copy stays a single contiguous move.
        let rows_per = indices.len().div_ceil(p.threads()).max(1);
        let mut claims: Vec<crate::sanitize::SlotClaim> = Vec::new();
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        let mut rest: &mut [f32] = &mut out.data;
        let mut run_at = 0;
        let mut base_row = 0;
        let mut c = 0;
        while run_at < runs.len() {
            let mut rows_here = 0;
            let mut end = run_at;
            while end < runs.len() && rows_here < rows_per {
                rows_here += runs[end].len;
                end += 1;
            }
            let (block, tail) = rest.split_at_mut(rows_here * cols);
            rest = tail;
            let group = &runs[run_at..end];
            let first = base_row;
            if crate::sanitize::enabled() {
                claims.push((c, first * cols..(first + rows_here) * cols));
            }
            let src = &self.data;
            tasks.push(Box::new(move || {
                gather_runs_kernel(src, cols, group, first, block)
            }));
            base_row += rows_here;
            run_at = end;
            c += 1;
        }
        p.scope_run_claimed("gather_rows", &claims, tasks);
        runs.len() as u64
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn concat_cols(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "concat_cols: row count mismatch");
        let cols = self.cols + rhs.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Vertical concatenation `[self ; rhs]`.
    pub fn concat_rows(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "concat_rows: column count mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        }
    }

    /// Approximate equality for tests.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f32) -> bool {
        self.shape() == rhs.shape()
            && self
                .data
                .iter()
                .zip(rhs.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Heap bytes held by this matrix (for the efficiency accounting).
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }

    /// Consume the matrix, handing back its backing storage (for buffer
    /// pooling).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }
}

/// Flop threshold above which matmul variants fan rows out across the pool.
/// Below it the per-call dispatch cost exceeds the win; chosen so a typical
/// per-batch model matmul (≤ 64³) stays inline.
pub const PAR_FLOPS: usize = 1 << 18;

/// Fixed lane width of the blocked kernel epilogues. Eight `f32` lanes fill
/// one AVX2 register (two NEON registers); the accumulator-array loops below
/// are shaped so the autovectorizer lifts them to SIMD without changing the
/// per-element floating-point operation order.
pub(crate) const LANES: usize = 8;

/// One [`LANES`]-wide block of the four-way axpy
/// `out[l] += a0·b0[l] + a1·b1[l] + a2·b2[l] + a3·b3[l]` — the k-tiled inner
/// step of every matmul kernel. Per element this is the exact left-associated
/// expression the scalar loop computes, so lane-blocking cannot change result
/// bits.
#[inline(always)]
pub(crate) fn axpy4_lanes(
    out: &mut [f32; LANES],
    a: [f32; 4],
    b0: &[f32; LANES],
    b1: &[f32; LANES],
    b2: &[f32; LANES],
    b3: &[f32; LANES],
) {
    for l in 0..LANES {
        out[l] += a[0] * b0[l] + a[1] * b1[l] + a[2] * b2[l] + a[3] * b3[l];
    }
}

/// One [`LANES`]-wide block of the single axpy `out[l] += a·b[l]` — the
/// `k % 4` tail step. Same bit-equivalence argument as [`axpy4_lanes`].
#[inline(always)]
pub(crate) fn axpy_lanes(out: &mut [f32; LANES], a: f32, b: &[f32; LANES]) {
    for l in 0..LANES {
        out[l] += a * b[l];
    }
}

/// One coalesced copy run of [`Matrix::gather_rows_into`]: `len` destination
/// rows starting at row `dst` read from source row `src` stepping by `step`
/// (1 = ascending-consecutive indices, one contiguous memcpy; 0 = the same
/// index repeated, copy once then replicate).
struct GatherRun {
    dst: usize,
    src: usize,
    len: usize,
    step: usize,
}

/// Resolve an index list into maximal coalesced runs. Greedy left-to-right:
/// at each position take the longest ascending-consecutive stretch, else the
/// longest repeated stretch (lone indices are a length-1 run of either
/// kind). Pure function of `indices` — the run count it yields is the
/// thread-count-invariant value `gather_rows_into` reports.
fn coalesce_gather_runs(indices: &[usize]) -> Vec<GatherRun> {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < indices.len() {
        let run = next_gather_run(indices, i);
        i += run.len;
        runs.push(run);
    }
    runs
}

/// The maximal run starting at position `i`: the longest
/// ascending-consecutive stretch if one starts here, else the longest
/// repeated stretch (a lone index is a length-1 run of either kind).
#[inline]
fn next_gather_run(indices: &[usize], i: usize) -> GatherRun {
    let src = indices[i];
    let mut len = 1;
    if indices.get(i + 1) == Some(&(src + 1)) {
        while indices.get(i + len) == Some(&(src + len)) {
            len += 1;
        }
        GatherRun {
            dst: i,
            src,
            len,
            step: 1,
        }
    } else {
        while indices.get(i + len) == Some(&src) {
            len += 1;
        }
        GatherRun {
            dst: i,
            src,
            len,
            step: 0,
        }
    }
}

/// Execute a contiguous group of gather runs into one destination slab
/// (`block` holds the rows starting at global row `base_row`). Each run is
/// either one block memcpy or a copy-then-replicate — plain byte moves, so
/// where slab boundaries fall cannot change the output.
fn gather_runs_kernel(
    src: &[f32],
    cols: usize,
    runs: &[GatherRun],
    base_row: usize,
    block: &mut [f32],
) {
    for run in runs {
        let at = (run.dst - base_row) * cols;
        let seg = &mut block[at..at + run.len * cols];
        if run.step == 1 {
            seg.copy_from_slice(&src[run.src * cols..(run.src + run.len) * cols]);
        } else {
            let (first, rest) = seg.split_at_mut(cols);
            first.copy_from_slice(&src[run.src * cols..(run.src + 1) * cols]);
            for r in rest.chunks_exact_mut(cols) {
                r.copy_from_slice(first);
            }
        }
    }
}

/// Row-parallel fill for the tape's fused kernels: `kernel(i, row)` produces
/// row `i` of `out` (the row keeps its prior contents, so read-modify-write
/// epilogues work), fanned across the pool above [`PAR_FLOPS`] `work` units
/// through the same claimed row partition as the matmul kernels. Each row is
/// written by exactly one kernel call regardless of the partition, so the
/// thread count cannot change result bits.
pub(crate) fn fill_rows_par(
    out: &mut Matrix,
    work: usize,
    kernel: impl Fn(usize, &mut [f32]) + Sync,
) {
    let (m, n) = out.shape();
    if m == 0 || n == 0 {
        return;
    }
    run_rows(m, n, work, &mut out.data, kernel);
}

/// Run `kernel(row_index, out_row)` over every `n`-wide row of `out`,
/// fanning contiguous row blocks across the pool when `work` (total flops)
/// crosses [`PAR_FLOPS`]. The kernel sees exactly the same `(i, row)` pairs
/// on every path, so parallelism cannot change the result bits.
fn run_rows<F>(m: usize, n: usize, work: usize, out: &mut [f32], kernel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), m * n);
    let p = crate::pool::pool();
    if work < PAR_FLOPS || p.threads() == 1 || m == 1 {
        for (i, row) in out.chunks_mut(n).enumerate() {
            kernel(i, row);
        }
        return;
    }
    let rows_per = m.div_ceil(p.threads()).max(1);
    let claims = row_block_claims(m, n, rows_per);
    let kernel = &kernel;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
        .chunks_mut(rows_per * n)
        .enumerate()
        .map(|(c, block)| {
            let start = c * rows_per;
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                for (r, row) in block.chunks_mut(n).enumerate() {
                    kernel(start + r, row);
                }
            });
            task
        })
        .collect();
    p.scope_run_claimed("matmul_rows", &claims, tasks);
}

/// Like [`run_rows`], but hands each worker its whole contiguous row slab
/// (`(first_row, rows × n slice)`) so the kernel can share work across
/// rows (e.g. one B sweep per row quad). The kernel must keep each row's
/// FP order independent of the slab shape — thread partitioning decides
/// where slabs start, and results must not depend on the thread count.
fn run_row_blocks<F>(m: usize, n: usize, work: usize, out: &mut [f32], kernel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), m * n);
    let p = crate::pool::pool();
    if work < PAR_FLOPS || p.threads() == 1 || m == 1 {
        kernel(0, out);
        return;
    }
    let rows_per = m.div_ceil(p.threads()).max(1);
    let claims = row_block_claims(m, n, rows_per);
    let kernel = &kernel;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
        .chunks_mut(rows_per * n)
        .enumerate()
        .map(|(c, block)| {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || kernel(c * rows_per, block));
            task
        })
        .collect();
    p.scope_run_claimed("matmul_row_blocks", &claims, tasks);
}

/// Sanitizer claims for the row-slab split: slab `c` owns the flat element
/// range of rows `c·rows_per ..` — mirrors the `chunks_mut(rows_per * n)`
/// partition above. Empty when the sanitizer is off.
fn row_block_claims(m: usize, n: usize, rows_per: usize) -> Vec<crate::sanitize::SlotClaim> {
    if !crate::sanitize::enabled() {
        return Vec::new();
    }
    (0..m)
        .step_by(rows_per.max(1))
        .enumerate()
        .map(|(c, start)| (c, start * n..(start + rows_per).min(m) * n))
        .collect()
}

/// One output row of `A·B`: k tiled in fours, four B rows streamed per pass
/// over the output row, branch-free (the old kernel skipped `a == 0.0`
/// entries, which costs a branch per k on dense data to save work that
/// almost never exists).
///
/// DETERMINISM: the per-row floating-point operation order here must match
/// [`matmul_quad_kernel`] exactly — which kernel computes a given row
/// depends on where thread-block boundaries fall, and the runtime contract
/// says the thread count can never change result bits.
#[inline]
fn matmul_row_kernel(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    out_row.fill(0.0);
    let k = a_row.len();
    let blocked = n / LANES * LANES;
    let mut kk = 0;
    while kk + 4 <= k {
        let a = [a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]];
        let bs = &b[kk * n..(kk + 4) * n];
        let (b0, b1) = (&bs[..n], &bs[n..2 * n]);
        let (b2, b3) = (&bs[2 * n..3 * n], &bs[3 * n..4 * n]);
        let mut j = 0;
        while j < blocked {
            let o: &mut [f32; LANES] = (&mut out_row[j..j + LANES]).try_into().unwrap();
            axpy4_lanes(
                o,
                a,
                b0[j..j + LANES].try_into().unwrap(),
                b1[j..j + LANES].try_into().unwrap(),
                b2[j..j + LANES].try_into().unwrap(),
                b3[j..j + LANES].try_into().unwrap(),
            );
            j += LANES;
        }
        while j < n {
            out_row[j] += a[0] * b0[j] + a[1] * b1[j] + a[2] * b2[j] + a[3] * b3[j];
            j += 1;
        }
        kk += 4;
    }
    while kk < k {
        let a0 = a_row[kk];
        let b0 = &b[kk * n..kk * n + n];
        let mut j = 0;
        while j < blocked {
            let o: &mut [f32; LANES] = (&mut out_row[j..j + LANES]).try_into().unwrap();
            axpy_lanes(o, a0, b0[j..j + LANES].try_into().unwrap());
            j += LANES;
        }
        for (o, &v0) in out_row[j..].iter_mut().zip(&b0[j..]) {
            *o += a0 * v0;
        }
        kk += 1;
    }
}

/// Four output rows of `A·B` per B sweep: the same k-tiled arithmetic as
/// [`matmul_row_kernel`] (identical per-row FP order — see the determinism
/// note there), but each streamed B tile feeds four output rows, quartering
/// the dominant memory traffic on large matmuls.
#[inline]
fn matmul_quad_kernel(a: &[&[f32]; 4], b: &[f32], n: usize, out: [&mut [f32]; 4]) {
    let [o0, o1, o2, o3] = out;
    o0.fill(0.0);
    o1.fill(0.0);
    o2.fill(0.0);
    o3.fill(0.0);
    let k = a[0].len();
    let blocked = n / LANES * LANES;
    let mut kk = 0;
    while kk + 4 <= k {
        let (r0, r1, r2, r3) = (
            [a[0][kk], a[0][kk + 1], a[0][kk + 2], a[0][kk + 3]],
            [a[1][kk], a[1][kk + 1], a[1][kk + 2], a[1][kk + 3]],
            [a[2][kk], a[2][kk + 1], a[2][kk + 2], a[2][kk + 3]],
            [a[3][kk], a[3][kk + 1], a[3][kk + 2], a[3][kk + 3]],
        );
        let bs = &b[kk * n..(kk + 4) * n];
        let (b0, b1) = (&bs[..n], &bs[n..2 * n]);
        let (b2, b3) = (&bs[2 * n..3 * n], &bs[3 * n..4 * n]);
        let mut j = 0;
        while j < blocked {
            let c0: &[f32; LANES] = b0[j..j + LANES].try_into().unwrap();
            let c1: &[f32; LANES] = b1[j..j + LANES].try_into().unwrap();
            let c2: &[f32; LANES] = b2[j..j + LANES].try_into().unwrap();
            let c3: &[f32; LANES] = b3[j..j + LANES].try_into().unwrap();
            axpy4_lanes(
                (&mut o0[j..j + LANES]).try_into().unwrap(),
                r0,
                c0,
                c1,
                c2,
                c3,
            );
            axpy4_lanes(
                (&mut o1[j..j + LANES]).try_into().unwrap(),
                r1,
                c0,
                c1,
                c2,
                c3,
            );
            axpy4_lanes(
                (&mut o2[j..j + LANES]).try_into().unwrap(),
                r2,
                c0,
                c1,
                c2,
                c3,
            );
            axpy4_lanes(
                (&mut o3[j..j + LANES]).try_into().unwrap(),
                r3,
                c0,
                c1,
                c2,
                c3,
            );
            j += LANES;
        }
        while j < n {
            let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
            o0[j] += r0[0] * v0 + r0[1] * v1 + r0[2] * v2 + r0[3] * v3;
            o1[j] += r1[0] * v0 + r1[1] * v1 + r1[2] * v2 + r1[3] * v3;
            o2[j] += r2[0] * v0 + r2[1] * v1 + r2[2] * v2 + r2[3] * v3;
            o3[j] += r3[0] * v0 + r3[1] * v1 + r3[2] * v2 + r3[3] * v3;
            j += 1;
        }
        kk += 4;
    }
    // k % 4 tail, row by row in the same order as `matmul_row_kernel`'s.
    for (o, a_row) in [o0, o1, o2, o3].into_iter().zip(a.iter()) {
        for t in kk..k {
            let a0 = a_row[t];
            let b0 = &b[t * n..t * n + n];
            let mut j = 0;
            while j < blocked {
                let ob: &mut [f32; LANES] = (&mut o[j..j + LANES]).try_into().unwrap();
                axpy_lanes(ob, a0, b0[j..j + LANES].try_into().unwrap());
                j += LANES;
            }
            for (o, &v0) in o[j..].iter_mut().zip(&b0[j..]) {
                *o += a0 * v0;
            }
        }
    }
}

/// One thread's contiguous slab of `A·B` output rows: quads of rows share
/// each B sweep, the `rows % 4` tail falls back to the single-row kernel.
/// Both kernels apply the identical per-row FP order, so where the quad
/// boundaries land (a function of the thread partition) cannot change bits.
fn matmul_block_kernel(
    a_data: &[f32],
    k: usize,
    first: usize,
    b: &[f32],
    n: usize,
    block: &mut [f32],
) {
    let mut i = first;
    let mut quads = block.chunks_exact_mut(4 * n);
    for quad in quads.by_ref() {
        let (o0, rest) = quad.split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        let a_rows = [
            &a_data[i * k..(i + 1) * k],
            &a_data[(i + 1) * k..(i + 2) * k],
            &a_data[(i + 2) * k..(i + 3) * k],
            &a_data[(i + 3) * k..(i + 4) * k],
        ];
        matmul_quad_kernel(&a_rows, b, n, [o0, o1, o2, o3]);
        i += 4;
    }
    for row in quads.into_remainder().chunks_mut(n) {
        matmul_row_kernel(&a_data[i * k..(i + 1) * k], b, n, row);
        i += 1;
    }
}

/// One output row of `Aᵀ·B` (row `i` of the result reads column `i` of `A`).
/// Same k-tiling as [`matmul_row_kernel`]; the four strided `A` loads per
/// pass amortize over a full contiguous sweep of the output row.
#[inline]
fn transpose_matmul_row_kernel(
    a: &[f32],
    a_cols: usize,
    i: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out_row: &mut [f32],
) {
    out_row.fill(0.0);
    let blocked = n / LANES * LANES;
    let mut kk = 0;
    while kk + 4 <= k {
        let av = [
            a[kk * a_cols + i],
            a[(kk + 1) * a_cols + i],
            a[(kk + 2) * a_cols + i],
            a[(kk + 3) * a_cols + i],
        ];
        let b0 = &b[kk * n..kk * n + n];
        let b1 = &b[(kk + 1) * n..(kk + 1) * n + n];
        let b2 = &b[(kk + 2) * n..(kk + 2) * n + n];
        let b3 = &b[(kk + 3) * n..(kk + 3) * n + n];
        let mut j = 0;
        while j < blocked {
            let o: &mut [f32; LANES] = (&mut out_row[j..j + LANES]).try_into().unwrap();
            axpy4_lanes(
                o,
                av,
                b0[j..j + LANES].try_into().unwrap(),
                b1[j..j + LANES].try_into().unwrap(),
                b2[j..j + LANES].try_into().unwrap(),
                b3[j..j + LANES].try_into().unwrap(),
            );
            j += LANES;
        }
        while j < n {
            out_row[j] += av[0] * b0[j] + av[1] * b1[j] + av[2] * b2[j] + av[3] * b3[j];
            j += 1;
        }
        kk += 4;
    }
    while kk < k {
        let a0 = a[kk * a_cols + i];
        let b0 = &b[kk * n..kk * n + n];
        let mut j = 0;
        while j < blocked {
            let o: &mut [f32; LANES] = (&mut out_row[j..j + LANES]).try_into().unwrap();
            axpy_lanes(o, a0, b0[j..j + LANES].try_into().unwrap());
            j += LANES;
        }
        for (o, &v0) in out_row[j..].iter_mut().zip(&b0[j..]) {
            *o += a0 * v0;
        }
        kk += 1;
    }
}

/// Four-accumulator dot product — the scalar-ILP workhorse behind
/// `matmul_transpose`.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let quads = a.len() / 4 * 4;
    let (a4, a_rest) = a.split_at(quads);
    let (b4, b_rest) = b.split_at(quads);
    let mut acc = [0.0f32; 4];
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (&x, &y) in a_rest.iter().zip(b_rest) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[5.0, 5.0], &[2.0, 3.0]]);
        assert_eq!(a.matmul(&b), Matrix::from_rows(&[&[5.0, 7.0]]));
    }

    #[test]
    fn matmul_transpose_equals_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[1.0, 2.0, 3.0]]);
        assert!(a
            .matmul_transpose(&b)
            .approx_eq(&a.matmul(&b.transpose()), 1e-6));
    }

    #[test]
    fn transpose_matmul_equals_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0], &[8.0], &[9.0]]);
        assert!(a
            .transpose_matmul(&b)
            .approx_eq(&a.transpose().matmul(&b), 1e-6));
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(a.matmul(&Matrix::identity(2)).approx_eq(&a, 1e-7));
        assert!(Matrix::identity(2).matmul(&a).approx_eq(&a, 1e-7));
    }

    #[test]
    fn gather_rows_repeats_and_reorders() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(
            g,
            Matrix::from_rows(&[&[3.0, 3.0], &[1.0, 1.0], &[3.0, 3.0]])
        );
    }

    #[test]
    fn gather_rows_into_matches_per_row_gather_bytewise() {
        let src = pseudo_random(37, 13, 5);
        let patterns: Vec<Vec<usize>> = vec![
            vec![],            // nothing to gather
            vec![4],           // single row
            (0..37).collect(), // identity: one whole-matrix memcpy
            // Frontier shape: ascending real slots then node-0 padding.
            (5..20).chain(std::iter::repeat_n(0, 9)).collect(),
            vec![3; 12],                                // one replicated run
            (0..30).rev().collect(),                    // descending: every row its own run
            vec![1, 2, 3, 3, 3, 7, 8, 0, 0, 36, 36, 1], // mixed runs
        ];
        for idx in &patterns {
            let want = src.gather_rows(idx);
            let mut got = Matrix::full(idx.len(), 13, f32::NAN);
            let runs = src.gather_rows_into(idx, &mut got);
            let want_bits: Vec<u32> = want.as_slice().iter().map(|x| x.to_bits()).collect();
            let got_bits: Vec<u32> = got.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(want_bits, got_bits, "pattern {idx:?}");
            assert!(runs as usize <= idx.len().max(1), "pattern {idx:?}");
        }
    }

    #[test]
    fn gather_run_count_is_a_pure_function_of_indices() {
        let src = pseudo_random(10, 4, 9);
        let mut out = Matrix::zeros(7, 4);
        // [2,3,4] ascending, [6,6] repeated, [1], [9] → exactly 4 runs.
        assert_eq!(src.gather_rows_into(&[2, 3, 4, 6, 6, 1, 9], &mut out), 4);
        let mut whole = Matrix::zeros(10, 4);
        let ids: Vec<usize> = (0..10).collect();
        assert_eq!(src.gather_rows_into(&ids, &mut whole), 1);
    }

    #[test]
    fn gather_rows_into_above_parallel_threshold_matches() {
        // 4352 rows × 64 cols > PAR_FLOPS elements: exercises the run-group
        // slab partition (inline on a 1-thread pool, fanned out otherwise).
        let src = pseudo_random(512, 64, 21);
        let mut idx = Vec::with_capacity(4352);
        for rep in 0..17 {
            idx.extend((rep % 7)..(rep % 7) + 200); // ascending stretches
            idx.extend(std::iter::repeat_n(rep % 512, 56)); // repeated padding
        }
        let want = src.gather_rows(&idx);
        let mut got = Matrix::full(idx.len(), 64, f32::NAN);
        let runs = src.gather_rows_into(&idx, &mut got);
        assert_eq!(runs, 34, "17 × (one ascending + one repeated run)");
        assert!(want == got, "parallel gather diverged from per-row gather");
    }

    #[test]
    #[should_panic(expected = "gather_rows_into")]
    fn gather_rows_into_rejects_out_of_range_index() {
        let src = Matrix::zeros(3, 2);
        let mut out = Matrix::zeros(1, 2);
        let _ = src.gather_rows_into(&[3], &mut out);
    }

    #[test]
    fn concat_cols_and_rows() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        assert_eq!(
            a.concat_cols(&b),
            Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]])
        );
        assert_eq!(
            a.concat_rows(&b),
            Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]])
        );
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_sum_norm() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.sum(), 7.0);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        assert_eq!(Matrix::full(1, 1, 2.5).scalar(), 2.5);
    }

    /// Naive triple loop as ground truth for the blocked kernels.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f64;
                for k in 0..a.cols() {
                    acc += a.get(i, k) as f64 * b.get(k, j) as f64;
                }
                out.set(i, j, acc as f32);
            }
        }
        out
    }

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = crate::rng::Pcg32::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn blocked_kernels_match_naive_on_awkward_shapes() {
        // Shapes straddle the k-unroll (k % 4 ∈ {0,1,2,3}) and include
        // zeros (the dropped skip-branch must not change results).
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (8, 9, 2), (17, 4, 13), (6, 6, 6)] {
            let mut a = pseudo_random(m, k, 11 + n as u64);
            let b = pseudo_random(k, n, 29 + m as u64);
            a.set(0, 0, 0.0);
            let want = naive_matmul(&a, &b);
            assert!(a.matmul(&b).approx_eq(&want, 1e-4), "matmul {m}x{k}x{n}");
            assert!(
                a.transpose().transpose_matmul(&b).approx_eq(&want, 1e-4),
                "transpose_matmul {m}x{k}x{n}"
            );
            assert!(
                a.matmul_transpose(&b.transpose()).approx_eq(&want, 1e-4),
                "matmul_transpose {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_into_overwrites_dirty_buffers() {
        let a = pseudo_random(5, 8, 1);
        let b = pseudo_random(8, 3, 2);
        let mut out = Matrix::full(5, 3, f32::NAN);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn large_matmul_crosses_parallel_threshold() {
        // 72³ > PAR_FLOPS: exercises the row-partitioned path (inline on a
        // 1-thread pool, fanned out otherwise) against the naive result.
        let a = pseudo_random(72, 72, 3);
        let b = pseudo_random(72, 72, 4);
        assert!(a.matmul(&b).approx_eq(&naive_matmul(&a, &b), 1e-3));
    }

    #[test]
    fn fused_in_place_variants() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]);

        let mut out = Matrix::zeros(2, 2);
        a.map_into(&mut out, |x| x.abs());
        assert_eq!(out, a.map(f32::abs));

        a.zip_into(&b, &mut out, |x, y| x + y);
        assert_eq!(out, a.zip(&b, |x, y| x + y));

        let mut c = a.clone();
        c.map_inplace(|x| x * 2.0);
        assert_eq!(c, a.map(|x| x * 2.0));

        c.copy_from(&a);
        assert_eq!(c, a);
        c.scale_inplace(0.5);
        assert_eq!(c, a.map(|x| x * 0.5));
    }
}
