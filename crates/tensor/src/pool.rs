//! Deterministic worker pool for the train/eval hot path.
//!
//! Design goals, in priority order:
//!
//! 1. **Bit-identical results at any thread count.** Work is split into
//!    chunks with boundaries that depend only on the input length — never on
//!    thread count or scheduling — and results land in caller-provided slots
//!    indexed by chunk, so reductions run in a fixed order. Running with
//!    `BENCHTEMP_THREADS=1` and `=64` must produce the same bytes.
//! 2. **Zero dependencies.** Plain `std::thread` workers behind a
//!    `Mutex<VecDeque>` + `Condvar` queue.
//! 3. **One pool per process.** Workers are spawned once (lazily) and
//!    reused; per-call overhead is one lock + one wakeup per chunk.
//!
//! The pool size comes from `BENCHTEMP_THREADS` (clamped to ≥ 1), defaulting
//! to `std::thread::available_parallelism()`. With one thread the helpers
//! run inline on the caller — no queue traffic at all — which keeps the
//! single-core path as fast as the pre-pool code.
//!
//! # Safety model
//!
//! `scope_run` erases closure lifetimes to `'static` so borrowed work can be
//! shipped to long-lived workers. This is sound because the submitting call
//! blocks until every submitted closure has finished (a counter + condvar
//! barrier), so no borrow outlives the call. Panics inside workers are
//! caught, carried back, and re-raised on the caller thread.

// audit-allow-file(hot-path-alloc-reachability): scope_run enqueues boxed tasks
// and clones Arc handles at dispatch time; the zero-alloc pinned tests size
// their inputs below the parallel thresholds, so their paths stay inline and
// never reach this dispatch machinery.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

/// A fixed-size worker pool. Obtain the process-wide instance via [`pool`].
pub struct ThreadPool {
    queue: Arc<Queue>,
    /// Configured size: drives chunk arithmetic (the determinism contract).
    threads: usize,
    /// Actually spawned workers: `threads` capped at the machine's available
    /// parallelism, so an oversubscribed `BENCHTEMP_THREADS` never pays
    /// dispatch overhead for cores that don't exist.
    workers: usize,
}

/// Tracks one batch of submitted jobs so the caller can block on completion.
struct Batch {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(Self {
            pending: Mutex::new(n),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    fn finish_one(&self) {
        let mut left = self.pending.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.pending.lock().unwrap();
        while *left > 0 {
            left = self.done.wait(left).unwrap();
        }
    }
}

fn worker_loop(queue: Arc<Queue>) {
    loop {
        let job = {
            let mut jobs = queue.jobs.lock().unwrap();
            loop {
                match jobs.pop_front() {
                    Some(j) => break j,
                    None => jobs = queue.available.wait(jobs).unwrap(),
                }
            }
        };
        job();
    }
}

/// Resolve the configured pool size: `BENCHTEMP_THREADS` if set and ≥ 1,
/// else the machine's available parallelism.
pub fn configured_threads() -> usize {
    // audit-allow(determinism-taint-hot-path): consulted only when the pool is first spawned (OnceLock); the hot path reuses live workers
    match std::env::var("BENCHTEMP_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

impl ThreadPool {
    fn new(threads: usize) -> Self {
        // Cap spawned workers at the machine's parallelism: configuring 4
        // threads on a 1-core host must behave like 1 thread (run inline),
        // not pay queue traffic for negative speedup. Chunk arithmetic still
        // uses the configured `threads`, so results are unchanged.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_workers(threads, threads.min(cores))
    }

    fn with_workers(threads: usize, workers: usize) -> Self {
        let queue = Arc::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        // With 1 effective worker everything runs inline; spawn no threads.
        // Otherwise spawn exactly `workers`: the caller blocks while a batch
        // runs, so the workers own all the compute.
        if workers > 1 {
            for i in 0..workers {
                let q = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("benchtemp-pool-{i}"))
                    .spawn(move || worker_loop(q))
                    .expect("spawn pool worker");
            }
        }
        Self {
            queue,
            threads,
            workers,
        }
    }

    /// Build a pool with an explicit worker count, bypassing the host-core
    /// cap — so tests can exercise the real queue machinery (not the inline
    /// path) even on single-core hosts. Not for production call sites: use
    /// [`pool`], which sizes itself from `BENCHTEMP_THREADS`.
    #[doc(hidden)]
    pub fn with_workers_for_tests(threads: usize, workers: usize) -> Self {
        Self::with_workers(threads, workers)
    }

    /// Number of worker threads this pool schedules across (≥ 1). Chunk
    /// boundaries are derived from this, never from [`ThreadPool::workers`],
    /// so results stay identical however many workers actually exist.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of OS worker threads actually spawned (≥ 1 meaning "inline").
    /// Use this to decide whether parallel dispatch can possibly pay off.
    pub fn workers(&self) -> usize {
        self.workers.max(1)
    }

    /// [`ThreadPool::scope_run`] with the batch's chunk-slot write claims
    /// declared up front. With `BENCHTEMP_SANITIZE=1` the claims are checked
    /// for pairwise disjointness on the calling thread *before* any task is
    /// dispatched (see [`crate::sanitize`]); otherwise the cost is one
    /// relaxed atomic load. Callers that split `&mut` slot storage by chunk
    /// arithmetic should prefer this over raw `scope_run` so the sanitizer
    /// can see their ranges.
    pub fn scope_run_claimed<'env>(
        &self,
        what: &str,
        claims: &[crate::sanitize::SlotClaim],
        tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
    ) {
        if crate::sanitize::enabled() {
            crate::sanitize::check_slot_claims(what, claims);
        }
        self.scope_run(tasks);
    }

    /// Run the given closures, blocking until all complete. Closures may
    /// borrow from the caller's stack. Panics are propagated.
    ///
    /// This is the only primitive that touches `unsafe`; `par_map` /
    /// `par_chunks` are built on it.
    pub fn scope_run<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if tasks.is_empty() {
            return;
        }
        if self.workers() == 1 || tasks.len() == 1 {
            for t in tasks {
                t();
            }
            return;
        }
        let batch = Batch::new(tasks.len());
        // Spans closed on workers must attribute to the job that dispatched
        // them, so carry the submitting thread's recorder into each task.
        let recorder = benchtemp_obs::current();
        benchtemp_obs::counters::POOL_TASKS_DISPATCHED.add(tasks.len() as u64);
        {
            let mut jobs = self.queue.jobs.lock().unwrap();
            for task in tasks {
                // SAFETY: `wait()` below blocks until every job has run, so
                // the 'env borrows inside `task` outlive its execution.
                let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
                let b = Arc::clone(&batch);
                let rec = recorder.clone();
                jobs.push_back(Box::new(move || {
                    let _obs = rec.as_ref().map(|r| r.install());
                    let result = catch_unwind(AssertUnwindSafe(task));
                    if let Err(p) = result {
                        *b.panic.lock().unwrap() = Some(p);
                    }
                    b.finish_one();
                }));
            }
            self.queue.available.notify_all();
        }
        batch.wait();
        let panicked = batch.panic.lock().unwrap().take();
        if let Some(p) = panicked {
            resume_unwind(p);
        }
    }

    /// Apply `f` to every element of `items`, returning outputs in input
    /// order. Chunk boundaries depend only on `items.len()` and the pool
    /// size cap, so the output is identical at any thread count.
    pub fn par_map<T: Sync, U: Send, F: Fn(&T) -> U + Sync>(&self, items: &[T], f: F) -> Vec<U> {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if self.workers() == 1 || n == 1 {
            return items.iter().map(f).collect();
        }
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        {
            let chunk = n.div_ceil(self.threads).max(1);
            let claims = chunk_claims(n, chunk);
            let f = &f;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = items
                .chunks(chunk)
                .zip(out.chunks_mut(chunk))
                .map(|(src, dst)| {
                    let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                        for (s, d) in src.iter().zip(dst.iter_mut()) {
                            *d = Some(f(s));
                        }
                    });
                    task
                })
                .collect();
            self.scope_run_claimed("par_map", &claims, tasks);
        }
        out.into_iter()
            .map(|v| v.expect("pool task completed"))
            .collect()
    }

    /// Split `items` into fixed-size chunks (`chunk_len` computed from the
    /// input length only), run `f` on each chunk, and hand the per-chunk
    /// results to `reduce` **in chunk order**. Deterministic at any thread
    /// count as long as `f` itself is.
    pub fn par_chunks<T: Sync, U: Send, F, R>(
        &self,
        items: &[T],
        min_chunk: usize,
        f: F,
        mut reduce: R,
    ) where
        F: Fn(usize, &[T]) -> U + Sync,
        R: FnMut(U),
    {
        let n = items.len();
        if n == 0 {
            return;
        }
        let chunk = chunk_len(n, min_chunk);
        if self.workers() == 1 || n <= chunk {
            for (i, c) in items.chunks(chunk).enumerate() {
                reduce(f(i, c));
            }
            return;
        }
        let n_chunks = n.div_ceil(chunk);
        let mut results: Vec<Option<U>> = Vec::with_capacity(n_chunks);
        results.resize_with(n_chunks, || None);
        {
            let claims = chunk_claims(n, chunk);
            let f = &f;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = items
                .chunks(chunk)
                .zip(results.iter_mut())
                .enumerate()
                .map(|(i, (src, slot))| {
                    let task: Box<dyn FnOnce() + Send + '_> =
                        Box::new(move || *slot = Some(f(i, src)));
                    task
                })
                .collect();
            self.scope_run_claimed("par_chunks", &claims, tasks);
        }
        for r in results {
            reduce(r.expect("pool task completed"));
        }
    }

    /// Partition `0..total` into contiguous index ranges and run `f` on each
    /// in parallel. Ranges depend only on `total` and the pool size, and `f`
    /// receives disjoint ranges, so callers can safely split `&mut` data by
    /// the same arithmetic.
    pub fn par_ranges<F: Fn(std::ops::Range<usize>) + Sync>(&self, total: usize, f: F) {
        if total == 0 {
            return;
        }
        if self.workers() == 1 {
            f(0..total);
            return;
        }
        let chunk = total.div_ceil(self.threads).max(1);
        let claims = chunk_claims(total, chunk);
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..total)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(total);
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || f(start..end));
                task
            })
            .collect();
        self.scope_run_claimed("par_ranges", &claims, tasks);
    }
}

/// The slot claims implied by splitting `0..n` into `chunk`-sized pieces —
/// what `par_map`/`par_chunks`/`par_ranges` declare to the sanitizer. Empty
/// when the sanitizer is off, so the hot path allocates nothing for it.
fn chunk_claims(n: usize, chunk: usize) -> Vec<crate::sanitize::SlotClaim> {
    if !crate::sanitize::enabled() {
        return Vec::new();
    }
    (0..n)
        .step_by(chunk.max(1))
        .enumerate()
        .map(|(i, start)| (i, start..(start + chunk).min(n)))
        .collect()
}

/// Fixed chunk length for `n` items: depends only on the input length and
/// the requested minimum, never on thread count — the determinism contract.
fn chunk_len(n: usize, min_chunk: usize) -> usize {
    min_chunk.max(1).min(n.max(1))
}

static POOL: OnceLock<ThreadPool> = OnceLock::new();
static POOL_SIZE: AtomicUsize = AtomicUsize::new(0);

/// The process-wide pool, created on first use with [`configured_threads`].
///
/// `BENCHTEMP_THREADS` is read once, at first call; changing it afterwards
/// has no effect on an already-built pool (tests that need both settings
/// spawn subprocesses).
pub fn pool() -> &'static ThreadPool {
    let p = POOL.get_or_init(|| ThreadPool::new(configured_threads()));
    POOL_SIZE.store(p.threads(), Ordering::Relaxed);
    p
}

/// The thread count of the live pool (for reporting).
pub fn current_threads() -> usize {
    pool().threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Force real workers even on single-core hosts so the queue machinery
    // (not just the inline path) is exercised by these tests.
    fn test_pool(threads: usize) -> ThreadPool {
        ThreadPool::with_workers(threads, threads)
    }

    #[test]
    fn oversubscribed_pool_runs_inline() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let p = ThreadPool::new(cores * 4);
        assert_eq!(p.threads(), cores * 4);
        assert!(p.workers() <= cores);
        // Results are identical to an uncapped pool of the same size.
        let items: Vec<u64> = (0..257).collect();
        let capped = p.par_map(&items, |&x| x * 3 + 1);
        let full = test_pool(cores * 4).par_map(&items, |&x| x * 3 + 1);
        assert_eq!(capped, full);
    }

    #[test]
    fn par_map_matches_sequential_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 7] {
            let p = test_pool(threads);
            let got = p.par_map(&items, |&x| x * x + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_reduces_in_chunk_order() {
        let items: Vec<usize> = (0..503).collect();
        for threads in [1, 2, 4] {
            let p = test_pool(threads);
            let mut seen = Vec::new();
            p.par_chunks(
                &items,
                64,
                |i, c| (i, c.iter().sum::<usize>()),
                |r| seen.push(r),
            );
            let idxs: Vec<usize> = seen.iter().map(|&(i, _)| i).collect();
            assert_eq!(idxs, (0..idxs.len()).collect::<Vec<_>>());
            let total: usize = seen.iter().map(|&(_, s)| s).sum();
            assert_eq!(total, items.iter().sum::<usize>(), "threads={threads}");
        }
    }

    #[test]
    fn par_ranges_covers_everything_disjointly() {
        for threads in [1, 2, 4] {
            let p = test_pool(threads);
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            p.par_ranges(100, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_inputs_are_noops() {
        let p = test_pool(4);
        let out: Vec<u8> = p.par_map(&[] as &[u8], |&x| x);
        assert!(out.is_empty());
        p.par_chunks(&[] as &[u8], 8, |_, _| (), |_| panic!("no chunks expected"));
        p.par_ranges(0, |_| panic!("no ranges expected"));
    }

    #[test]
    fn worker_panics_propagate() {
        let p = test_pool(4);
        let items: Vec<usize> = (0..64).collect();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            p.par_map(&items, |&x| {
                if x == 13 {
                    panic!("boom");
                }
                x
            })
        }));
        assert!(r.is_err());
        // Pool stays usable after a propagated panic.
        let ok = p.par_map(&items, |&x| x + 1);
        assert_eq!(ok[0], 1);
    }

    #[test]
    fn configured_threads_parses_env_shapes() {
        // Only checks the parse logic with the process env left untouched.
        assert!(configured_threads() >= 1);
    }
}
