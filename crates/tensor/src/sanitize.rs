//! Runtime sanitizer for the parallel runtime, gated by `BENCHTEMP_SANITIZE=1`.
//!
//! The pool's `'static`-erasure safety argument (see [`crate::pool`]) proves
//! that borrowed closures cannot outlive a `scope_run` call. It deliberately
//! does *not* prove that the closures of one batch write disjoint memory —
//! that part of the contract is upheld by chunk arithmetic at every call
//! site (`chunks_mut`, `split_at_mut`, index ranges derived from the same
//! `div_ceil`). A refactor that breaks the arithmetic compiles fine and
//! races silently.
//!
//! This module closes that gap with a *happens-before* checker: every
//! parallel dispatch declares, on the submitting thread and **before** any
//! task is handed to a worker, the slot range each chunk will write. Because
//! the claims are recorded in program order ahead of the dispatch, and the
//! batch barrier in `scope_run` orders every task of batch *n* before every
//! task of batch *n+1*, pairwise disjointness of the claimed ranges within
//! one batch is sufficient to exclude write-write races on slot memory — the
//! one class of race the lifetime-erasure argument cannot see.
//!
//! When `BENCHTEMP_SANITIZE` is unset the per-batch cost is a single relaxed
//! atomic load; no claim vectors are built. When set, each batch sorts its
//! claims and panics (on the *submitting* thread, before any work runs) if
//! two chunks overlap, naming both chunks and the contested slots.
//!
//! The tape-level checks (finite gradients after `backward`, matrix-buffer
//! pool leak accounting at `Tape::reset`) live in [`crate::tape`] and use
//! [`enabled`] from here.

use std::ops::Range;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Tri-state test/bench override: 0 = follow the environment, 1 = forced
/// off, 2 = forced on.
static FORCED: AtomicU8 = AtomicU8::new(0);

static ENV_ENABLED: OnceLock<bool> = OnceLock::new();

/// Is the sanitizer on? Reads `BENCHTEMP_SANITIZE` once per process (same
/// policy as `BENCHTEMP_THREADS`); tests and benches can override with
/// [`set_forced`]. The fast path — sanitizer off, no override — is one
/// relaxed atomic load plus one `OnceLock` read.
pub fn enabled() -> bool {
    match FORCED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *ENV_ENABLED.get_or_init(
            // audit-allow(determinism-taint-hot-path): read once via OnceLock and cached for the process lifetime; cannot vary within a run
            || matches!(std::env::var("BENCHTEMP_SANITIZE"), Ok(v) if v.trim() == "1"),
        ),
    }
}

/// Test/bench hook: `Some(true)` forces the sanitizer on, `Some(false)`
/// forces it off, `None` restores environment control. Not for production
/// call sites — the environment variable is the supported switch.
#[doc(hidden)]
pub fn set_forced(on: Option<bool>) {
    FORCED.store(
        match on {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        },
        Ordering::Relaxed,
    );
}

/// One chunk's declared write span: `(chunk index, slot range)`.
pub type SlotClaim = (usize, Range<usize>);

/// Assert that every pair of claimed slot ranges in one dispatch batch is
/// disjoint. Panics on the submitting thread — before any task runs — with
/// the two offending chunks and the contested slot range.
///
/// `what` names the dispatch site (e.g. `"par_map"`, `"sample_frontier"`)
/// so the panic message points at the broken chunk arithmetic directly.
/// Empty ranges are permitted and never overlap anything.
pub fn check_slot_claims(what: &str, claims: &[SlotClaim]) {
    benchtemp_obs::counters::SANITIZE_BATCHES_CHECKED.incr();
    benchtemp_obs::counters::SANITIZE_CLAIMS_CHECKED.add(claims.len() as u64);
    // audit-allow(hot-path-alloc-reachability): sorts a borrowed view of the claims; runs only under BENCHTEMP_SANITIZE=1, never in measured configurations
    let mut sorted: Vec<&SlotClaim> = claims.iter().filter(|(_, r)| !r.is_empty()).collect();
    sorted.sort_by_key(|(chunk, r)| (r.start, r.end, *chunk));
    for pair in sorted.windows(2) {
        let (a_chunk, a) = pair[0];
        let (b_chunk, b) = pair[1];
        if b.start < a.end {
            panic!(
                "sanitize[{what}]: chunk-slot claims overlap: chunk {a_chunk} writes \
                 {}..{} and chunk {b_chunk} writes {}..{} (contested slots {}..{}); \
                 disjoint chunk arithmetic is the pool's safety contract",
                a.start,
                a.end,
                b.start,
                b.end,
                b.start,
                a.end.min(b.end),
            );
        }
    }
}

/// Serializes unit tests that flip [`set_forced`]: the override is
/// process-global, so concurrent tests restoring it would disarm each
/// other's check windows. Poisoning is ignored — a panicking test (several
/// here panic on purpose) must not wedge the rest.
#[cfg(test)]
pub(crate) fn forced_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_claims_pass() {
        check_slot_claims("test", &[(0, 0..4), (1, 4..8), (2, 8..8), (3, 9..12)]);
    }

    #[test]
    fn overlapping_claims_panic_with_context() {
        let r = std::panic::catch_unwind(|| {
            check_slot_claims("unit", &[(0, 0..10), (1, 5..15)]);
        });
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("unit"), "{msg}");
        assert!(msg.contains("overlap"), "{msg}");
        assert!(msg.contains("5..10"), "contested range missing: {msg}");
    }

    #[test]
    fn identical_ranges_are_caught() {
        let r = std::panic::catch_unwind(|| {
            check_slot_claims("unit", &[(0, 3..7), (1, 3..7)]);
        });
        assert!(r.is_err());
    }

    #[test]
    fn forced_override_wins_over_env() {
        let _serial = forced_test_lock();
        set_forced(Some(true));
        assert!(enabled());
        set_forced(Some(false));
        assert!(!enabled());
        set_forced(None);
    }
}
