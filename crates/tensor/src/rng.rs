//! Dependency-free pseudo-random number generation.
//!
//! The crate previously pulled in `rand`; on a registry-less build host that
//! single external dependency made the whole workspace unbuildable. This
//! module replaces the subset of the `rand` API the workspace actually uses
//! with two small, well-studied generators:
//!
//! * [`SplitMix64`] — O'Neill/Steele's 64-bit mixer, used to stretch a user
//!   seed into the PCG state/stream initialisers so that nearby seeds
//!   (0, 1, 2, …) land in unrelated parts of the sequence;
//! * [`Pcg32`] — the PCG-XSH-RR 64/32 generator (O'Neill 2014): 64-bit LCG
//!   state, 32-bit output via xorshift-high + random rotation. Small, fast,
//!   passes BigCrush, and trivially reproducible across platforms.
//!
//! Everything downstream refers to [`Pcg32`] through the
//! `benchtemp_tensor::init::SeededRng` alias, so the concrete generator can
//! be swapped without touching model code.

/// SplitMix64: stateless-feeling stream of well-mixed 64-bit values.
///
/// Used for seeding [`Pcg32`] and anywhere a few decorrelated u64s are
/// needed from a single seed.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a mixer from an arbitrary seed (0 is fine).
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSH-RR 64/32: the workspace's seeded generator.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    /// Stream selector; must be odd. Fixed per generator instance.
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Deterministically construct a generator from a single user seed.
    ///
    /// The seed is stretched through [`SplitMix64`] so that consecutive
    /// seeds produce statistically independent streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let initstate = mix.next_u64();
        let initseq = mix.next_u64();
        let mut rng = Self {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        // Standard PCG init: advance once, add the state seed, advance again.
        rng.step();
        rng.state = rng.state.wrapping_add(initstate);
        rng.step();
        rng
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
    }

    /// Next 32-bit output (XSH-RR output function).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64-bit output (two 32-bit draws, high word first).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform integer in `[0, bound)` without modulo bias
    /// (Lemire's multiply-shift rejection method).
    #[inline]
    fn below_u32(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u32() as u64;
            let m = x * bound as u64;
            let lo = m as u32;
            // Rejection zone: the lowest `(2^32 % bound)` products are biased.
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform integer in `[0, bound)` for 64-bit bounds.
    #[inline]
    fn below_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound <= u32::MAX as u64 {
            return self.below_u32(bound as u32) as u64;
        }
        // Bitmask rejection: cheap and unbiased for rare wide bounds.
        let mask = u64::MAX >> (bound - 1).leading_zeros();
        loop {
            let x = self.next_u64() & mask;
            if x < bound {
                return x;
            }
        }
    }

    /// Uniform value in the given range. Supports the same range shapes the
    /// workspace used through `rand::Rng::gen_range`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // Compare a 53-bit uniform in [0,1) against p.
        self.uniform_f64() < p
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f32 in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn uniform_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Fisher–Yates shuffle (replaces `rand::seq::SliceRandom::shuffle`).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

/// Range shapes accepted by [`Pcg32::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut Pcg32) -> Self::Output;
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Pcg32) -> usize {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.below_u64((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Pcg32) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive range in gen_range");
        let span = hi - lo;
        if span == usize::MAX {
            return rng.next_u64() as usize;
        }
        lo + rng.below_u64(span as u64 + 1) as usize
    }
}

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut Pcg32) -> u64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.below_u64(self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    #[inline]
    fn sample(self, rng: &mut Pcg32) -> f32 {
        debug_assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * rng.uniform_f32()
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Pcg32) -> f64 {
        debug_assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * rng.uniform_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcg_reference_vector() {
        // Reference values for PCG-XSH-RR 64/32 with the canonical demo
        // seeding (state 42, stream 54), from the pcg-random.org minimal C
        // implementation.
        let mut rng = Pcg32 {
            state: 0,
            inc: (54 << 1) | 1,
        };
        rng.step();
        rng.state = rng.state.wrapping_add(42);
        rng.step();
        let first: Vec<u32> = (0..6).map(|_| rng.next_u32()).collect();
        assert_eq!(
            first,
            vec![0xa15c02b7, 0x7b47f409, 0xba1d3330, 0x83d2f293, 0xbfa4784b, 0xcbed606e]
        );
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a: Vec<u32> = {
            let mut r = Pcg32::seed_from_u64(7);
            (0..8).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = Pcg32::seed_from_u64(7);
            (0..8).map(|_| r.next_u32()).collect()
        };
        let c: Vec<u32> = {
            let mut r = Pcg32::seed_from_u64(8);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = Pcg32::seed_from_u64(1);
        for _ in 0..2000 {
            let x = r.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0..=4usize);
            assert!(y <= 4);
            let f = r.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let d = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&d));
        }
        // Inclusive endpoint is actually reachable.
        let mut hit_top = false;
        for _ in 0..200 {
            if r.gen_range(0..=3usize) == 3 {
                hit_top = true;
            }
        }
        assert!(hit_top);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Pcg32::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Pcg32::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn uniform_unit_intervals_stay_in_range() {
        let mut r = Pcg32::seed_from_u64(3);
        for _ in 0..5000 {
            let f = r.uniform_f32();
            assert!((0.0..1.0).contains(&f));
            let d = r.uniform_f64();
            assert!((0.0..1.0).contains(&d));
        }
    }
}
