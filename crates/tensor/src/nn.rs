//! Neural-network layers shared by every TGNN in the model zoo.
//!
//! Each layer owns [`ParamId`]s inside a [`ParamStore`] and builds its
//! forward computation onto a [`Graph`]. The layers mirror the building
//! blocks named in the paper: linear/MLP decoders, GRU memory updaters
//! (TGN/JODIE), Bochner time encoding (TGAT Eq. continuous-time encoding),
//! and multi-head temporal attention (TGAT/TGN/CAWN).

use crate::init::{self, SeededRng};
use crate::matrix::Matrix;
use crate::params::{Graph, ParamId, ParamStore};
use crate::tape::{Activation, Var};

/// Fully-connected layer `y = xW + b`.
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut SeededRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store.add(
            format!("{name}.w"),
            init::xavier_uniform(in_dim, out_dim, rng),
        );
        let b = store.add(format!("{name}.b"), Matrix::zeros(1, out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        self.forward_act(g, x, Activation::None)
    }

    /// Forward with a fused activation epilogue — one tape node for
    /// matmul + bias + activation (see [`crate::tape::Tape::linear_affine`]).
    pub fn forward_act(&self, g: &mut Graph, x: Var, act: Activation) -> Var {
        debug_assert_eq!(g.shape(x).1, self.in_dim, "Linear: input width");
        let w = g.param(self.w);
        let b = g.param(self.b);
        g.linear_affine(x, w, b, act)
    }
}

/// Two-layer MLP with ReLU, the decoder head used across the pipeline.
pub struct Mlp {
    pub fc1: Linear,
    pub fc2: Linear,
}

impl Mlp {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut SeededRng,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
    ) -> Self {
        Mlp {
            fc1: Linear::new(store, rng, &format!("{name}.fc1"), in_dim, hidden),
            fc2: Linear::new(store, rng, &format!("{name}.fc2"), hidden, out_dim),
        }
    }

    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let h = self.fc1.forward_act(g, x, Activation::Relu);
        self.fc2.forward(g, h)
    }
}

/// Merge layer: `MLP([a | b])`, the edge decoder of TGN/TGAT.
pub struct MergeLayer {
    pub mlp: Mlp,
}

impl MergeLayer {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut SeededRng,
        name: &str,
        dim_a: usize,
        dim_b: usize,
        hidden: usize,
        out_dim: usize,
    ) -> Self {
        MergeLayer {
            mlp: Mlp::new(store, rng, name, dim_a + dim_b, hidden, out_dim),
        }
    }

    pub fn forward(&self, g: &mut Graph, a: Var, b: Var) -> Var {
        let cat = g.concat_cols(a, b);
        self.mlp.forward(g, cat)
    }
}

/// GRU cell: the memory updater of TGN and the trajectory RNN of JODIE.
pub struct GruCell {
    wz: Linear,
    uz: ParamId,
    wr: Linear,
    ur: ParamId,
    wh: Linear,
    uh: ParamId,
    pub in_dim: usize,
    pub hidden: usize,
}

impl GruCell {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut SeededRng,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        GruCell {
            wz: Linear::new(store, rng, &format!("{name}.wz"), in_dim, hidden),
            uz: store.add(
                format!("{name}.uz"),
                init::xavier_uniform(hidden, hidden, rng),
            ),
            wr: Linear::new(store, rng, &format!("{name}.wr"), in_dim, hidden),
            ur: store.add(
                format!("{name}.ur"),
                init::xavier_uniform(hidden, hidden, rng),
            ),
            wh: Linear::new(store, rng, &format!("{name}.wh"), in_dim, hidden),
            uh: store.add(
                format!("{name}.uh"),
                init::xavier_uniform(hidden, hidden, rng),
            ),
            in_dim,
            hidden,
        }
    }

    /// One step: `x` is n×in_dim, `h` is n×hidden → new hidden n×hidden.
    pub fn forward(&self, g: &mut Graph, x: Var, h: Var) -> Var {
        let uz = g.param(self.uz);
        let ur = g.param(self.ur);
        let uh = g.param(self.uh);

        let z = {
            let a = self.wz.forward(g, x);
            let b = g.matmul(h, uz);
            let s = g.add(a, b);
            g.sigmoid(s)
        };
        let r = {
            let a = self.wr.forward(g, x);
            let b = g.matmul(h, ur);
            let s = g.add(a, b);
            g.sigmoid(s)
        };
        let h_tilde = {
            let a = self.wh.forward(g, x);
            let rh = g.mul(r, h);
            let b = g.matmul(rh, uh);
            let s = g.add(a, b);
            g.tanh(s)
        };
        // h' = (1 - z) ⊙ h + z ⊙ h̃
        let neg_z = g.neg(z);
        let one_minus_z = g.add_scalar(neg_z, 1.0);
        let keep = g.mul(one_minus_z, h);
        let update = g.mul(z, h_tilde);
        g.add(keep, update)
    }
}

/// Bochner-style functional time encoding: `cos(Δt·ω + φ)` (TGAT §3).
///
/// Frequencies are initialized on a log-spaced grid (as in the reference
/// implementations) and fine-tuned by gradient descent.
pub struct TimeEncode {
    pub omega: ParamId,
    pub phase: ParamId,
    pub dim: usize,
}

impl TimeEncode {
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let mut w = Matrix::zeros(1, dim);
        for i in 0..dim {
            // 1 / 10^(i * 9 / dim): spans ~9 decades of time scales.
            w.set(0, i, 1.0 / 10f32.powf(i as f32 * 9.0 / dim as f32));
        }
        let omega = store.add(format!("{name}.omega"), w);
        let phase = store.add(format!("{name}.phase"), Matrix::zeros(1, dim));
        TimeEncode { omega, phase, dim }
    }

    /// `dt` is an n×1 column of time deltas → n×dim encoding.
    pub fn forward(&self, g: &mut Graph, dt: Var) -> Var {
        debug_assert_eq!(g.shape(dt).1, 1, "TimeEncode: dt must be n×1");
        let omega = g.param(self.omega);
        let phase = g.param(self.phase);
        let scaled = g.matmul(dt, omega);
        let shifted = g.add_row_broadcast(scaled, phase);
        g.cos(shifted)
    }

    /// Encode a plain slice of deltas through the fused
    /// [`crate::tape::Tape::time_encode_fused`] op: one node instead of the
    /// four-node leaf → matmul → broadcast → cos chain, with repeated Δt
    /// rows memoized within the call. Bit-identical to [`TimeEncode::forward`]
    /// over `Matrix::column(dts)`.
    pub fn forward_slice(&self, g: &mut Graph, dts: &[f32]) -> Var {
        let omega = g.param(self.omega);
        let phase = g.param(self.phase);
        g.time_encode_fused(dts, omega, phase)
    }
}

/// Multi-head temporal attention over fixed-size neighbor groups.
///
/// This is the aggregation operator of TGAT (and the embedding module of
/// TGN): each target node attends over its `group` sampled temporal
/// neighbors; padded slots are masked out. Satisfies the Appendix-C
/// divisibility constraint by construction (`model_dim % heads == 0`).
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    pub heads: usize,
    pub model_dim: usize,
}

impl MultiHeadAttention {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        rng: &mut SeededRng,
        name: &str,
        query_dim: usize,
        key_dim: usize,
        model_dim: usize,
        heads: usize,
        out_dim: usize,
    ) -> Self {
        assert!(
            heads > 0 && model_dim.is_multiple_of(heads),
            "model_dim must divide by heads (Eq. 1)"
        );
        MultiHeadAttention {
            wq: Linear::new(store, rng, &format!("{name}.wq"), query_dim, model_dim),
            wk: Linear::new(store, rng, &format!("{name}.wk"), key_dim, model_dim),
            wv: Linear::new(store, rng, &format!("{name}.wv"), key_dim, model_dim),
            wo: Linear::new(store, rng, &format!("{name}.wo"), model_dim, out_dim),
            heads,
            model_dim,
        }
    }

    /// `query` n×query_dim; `keys` (n·group)×key_dim; `mask` row-validity.
    ///
    /// All heads run inside one fused [`Op::MultiHeadGroupedAttention`] node
    /// reading strided per-head views of the packed Q/K/V projections — no
    /// per-head `slice_cols` copies, per-head attention nodes, or
    /// `concat_cols_many`. With fusion disabled the tape emits exactly that
    /// per-head chain, bit-identically.
    pub fn forward(
        &self,
        g: &mut Graph,
        query: Var,
        keys: Var,
        group: usize,
        mask: &[bool],
    ) -> Var {
        let q = self.wq.forward(g, query);
        let k = self.wk.forward(g, keys);
        let v = self.wv.forward(g, keys);
        let att = g.multi_head_grouped_attention(q, k, v, self.heads, group, mask);
        self.wo.forward(g, att)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;
    use crate::optim::Adam;

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut r = rng(1);
        let lin = Linear::new(&mut store, &mut r, "l", 4, 3);
        store
            .value_mut(lin.b)
            .as_mut_slice()
            .iter_mut()
            .for_each(|x| *x = 1.0);
        let mut g = Graph::new(&store);
        let x = g.input(Matrix::zeros(5, 4));
        let y = lin.forward(&mut g, x);
        assert_eq!(g.shape(y), (5, 3));
        // zero input → bias only
        assert!(g
            .value(y)
            .as_slice()
            .iter()
            .all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn gru_interpolates_between_keep_and_update() {
        // With all-zero weights, z = 0.5, r = 0.5, h̃ = 0, so h' = 0.5 h.
        let mut store = ParamStore::new();
        let mut r = rng(1);
        let gru = GruCell::new(&mut store, &mut r, "gru", 2, 3);
        for p in &mut store.params {
            p.value.fill_zero();
        }
        let mut g = Graph::new(&store);
        let x = g.input(Matrix::zeros(1, 2));
        let h = g.input(Matrix::from_rows(&[&[1.0, -2.0, 4.0]]));
        let h2 = gru.forward(&mut g, x, h);
        let got = g.value(h2);
        assert!(got.approx_eq(&Matrix::from_rows(&[&[0.5, -1.0, 2.0]]), 1e-5));
    }

    #[test]
    fn time_encode_is_bounded_and_time_sensitive() {
        let mut store = ParamStore::new();
        let te = TimeEncode::new(&mut store, "te", 8);
        let mut g = Graph::new(&store);
        let enc = te.forward_slice(&mut g, &[0.0, 10.0, 1000.0]);
        let m = g.value(enc);
        assert_eq!(m.shape(), (3, 8));
        assert!(m.as_slice().iter().all(|&x| (-1.0..=1.0).contains(&x)));
        // Δt = 0 gives cos(0) = 1 everywhere (phase starts at 0).
        assert!(m.row(0).iter().all(|&x| (x - 1.0).abs() < 1e-6));
        // Distinct Δt must produce distinct encodings.
        assert_ne!(m.row(1), m.row(2));
    }

    #[test]
    fn attention_masks_padded_neighbors() {
        let mut store = ParamStore::new();
        let mut r = rng(2);
        let att = MultiHeadAttention::new(&mut store, &mut r, "att", 4, 4, 8, 2, 4);
        let mut g = Graph::new(&store);
        let q = g.input(Matrix::full(1, 4, 0.5));
        // Two neighbor slots; the second is garbage but masked off.
        let mut keys = Matrix::full(2, 4, 0.1);
        keys.row_mut(1).iter_mut().for_each(|x| *x = 1e6);
        let k = g.input(keys);
        let out = att.forward(&mut g, q, k, 2, &[true, false]);
        assert!(g.value(out).as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn attention_all_masked_returns_zero_contribution() {
        let mut store = ParamStore::new();
        let mut r = rng(2);
        let att = MultiHeadAttention::new(&mut store, &mut r, "att", 4, 4, 8, 2, 4);
        // Zero the output bias so a zero attention result stays zero.
        store.value_mut(att.wo.b).fill_zero();
        let mut g = Graph::new(&store);
        let q = g.input(Matrix::full(1, 4, 0.5));
        let k = g.input(Matrix::full(2, 4, 0.3));
        let out = att.forward(&mut g, q, k, 2, &[false, false]);
        assert!(g.value(out).as_slice().iter().all(|&x| x.abs() < 1e-6));
    }

    /// End-to-end: an MLP must learn XOR, proving layers + autograd + Adam
    /// compose into a working training loop.
    #[test]
    fn mlp_learns_xor() {
        let mut store = ParamStore::new();
        let mut r = rng(42);
        let mlp = Mlp::new(&mut store, &mut r, "xor", 2, 8, 1);
        let mut adam = Adam::new(0.05);
        let xs = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let ys = [0.0, 1.0, 1.0, 0.0];
        let mut last_loss = f32::INFINITY;
        for _ in 0..400 {
            let mut g = Graph::new(&store);
            let x = g.input(xs.clone());
            let logits = mlp.forward(&mut g, x);
            let loss = g.bce_with_logits(logits, &ys);
            last_loss = g.value(loss).scalar();
            let grads = g.backward(loss);
            adam.step(&mut store, &grads);
        }
        assert!(last_loss < 0.1, "XOR loss stayed at {last_loss}");
        // Check predictions.
        let mut g = Graph::new(&store);
        let x = g.input(xs);
        let logits = mlp.forward(&mut g, x);
        let probs = g.sigmoid(logits);
        let p = g.value(probs);
        for (i, &y) in ys.iter().enumerate() {
            let pi = p.get(i, 0);
            assert!(
                (pi - y).abs() < 0.3,
                "sample {i}: predicted {pi}, expected {y}"
            );
        }
    }
}
