//! Model checkpointing: serialize a [`ParamStore`]'s parameter values (and
//! optionally optimizer moments) to a compact little-endian binary file, so
//! trained models survive process restarts — the leaderboard workflow's
//! "train once, evaluate many times" path.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::matrix::Matrix;
use crate::params::ParamStore;

const MAGIC: &[u8; 8] = b"BTCKPT01";

/// Save parameter values (names + shapes + data) to `path`.
pub fn save_checkpoint(store: &ParamStore, path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(store.len() as u64).to_le_bytes())?;
    for i in 0..store.len() {
        let id = crate::params::ParamId(i);
        let name = store.name(id).as_bytes();
        w.write_all(&(name.len() as u64).to_le_bytes())?;
        w.write_all(name)?;
        let m = store.value(id);
        let (rows, cols) = m.shape();
        w.write_all(&(rows as u64).to_le_bytes())?;
        w.write_all(&(cols as u64).to_le_bytes())?;
        for &x in m.as_slice() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Load a checkpoint into an existing store. Parameters are matched **by
/// name**; every store parameter must be present in the file with a
/// matching shape (extra file entries are ignored, supporting fine-tune
/// workflows where heads were added later).
pub fn load_checkpoint(store: &mut ParamStore, path: &Path) -> std::io::Result<()> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not a BenchTemp checkpoint",
        ));
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let count = u64::from_le_bytes(u64buf) as usize;
    let mut loaded: std::collections::HashMap<String, Matrix> =
        std::collections::HashMap::with_capacity(count);
    for _ in 0..count {
        r.read_exact(&mut u64buf)?;
        let name_len = u64::from_le_bytes(u64buf) as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        r.read_exact(&mut u64buf)?;
        let rows = u64::from_le_bytes(u64buf) as usize;
        r.read_exact(&mut u64buf)?;
        let cols = u64::from_le_bytes(u64buf) as usize;
        let mut bytes = vec![0u8; rows * cols * 4];
        r.read_exact(&mut bytes)?;
        let data = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        loaded.insert(name, Matrix::from_vec(rows, cols, data));
    }

    for i in 0..store.len() {
        let id = crate::params::ParamId(i);
        let name = store.name(id).to_string();
        let value = loaded.get(&name).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("checkpoint is missing parameter {name:?}"),
            )
        })?;
        if value.shape() != store.value(id).shape() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "parameter {name:?}: checkpoint shape {:?} != model shape {:?}",
                    value.shape(),
                    store.value(id).shape()
                ),
            ));
        }
        *store.value_mut(id) = value.clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{self, rng};
    use crate::nn::Mlp;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("benchtemp_ckpt_{name}_{}.bin", std::process::id()))
    }

    #[test]
    fn round_trip_restores_exact_values() {
        let mut store = ParamStore::new();
        let mut r = rng(1);
        let _mlp = Mlp::new(&mut store, &mut r, "m", 8, 16, 2);
        let before = store.snapshot();
        let path = tmpfile("rt");
        save_checkpoint(&store, &path).unwrap();

        // Perturb, then load back.
        for i in 0..store.len() {
            let id = crate::params::ParamId(i);
            store
                .value_mut(id)
                .as_mut_slice()
                .iter_mut()
                .for_each(|x| *x += 1.0);
        }
        load_checkpoint(&mut store, &path).unwrap();
        let after = store.snapshot();
        assert_eq!(before, after);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut a = ParamStore::new();
        a.add("w", init::randn(2, 2, 1.0, &mut rng(1)));
        let path = tmpfile("shape");
        save_checkpoint(&a, &path).unwrap();

        let mut b = ParamStore::new();
        b.add("w", Matrix::zeros(3, 3));
        let err = load_checkpoint(&mut b, &path).unwrap_err();
        assert!(err.to_string().contains("shape"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_parameter_is_rejected() {
        let a = ParamStore::new();
        let path = tmpfile("missing");
        save_checkpoint(&a, &path).unwrap();
        let mut b = ParamStore::new();
        b.add("needed", Matrix::zeros(1, 1));
        let err = load_checkpoint(&mut b, &path).unwrap_err();
        assert!(err.to_string().contains("missing parameter"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_file_is_rejected() {
        let path = tmpfile("garbage");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        let mut store = ParamStore::new();
        let err = load_checkpoint(&mut store, &path).unwrap_err();
        assert!(err.to_string().contains("not a BenchTemp checkpoint"));
        std::fs::remove_file(path).ok();
    }
}
