//! Pool panic propagation and the slot-claim sanitizer.
//!
//! Every test in this binary forces sanitize mode ON (process-wide) and
//! never turns it back off — the `set_forced` override is global state, so
//! a restore in one test could disarm a sibling running concurrently. The
//! sanitize-off behavior (zero overhead, no checks) is covered by the
//! determinism suite and `bench_kernels`, both of which run in their own
//! processes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use benchtemp_tensor::pool::ThreadPool;
use benchtemp_tensor::sanitize;

fn sanitized_pool() -> ThreadPool {
    sanitize::set_forced(Some(true));
    // Bypass the host-core cap so the real queue machinery (not the inline
    // path) runs even on single-core CI hosts.
    ThreadPool::with_workers_for_tests(4, 4)
}

#[test]
fn middle_chunk_panic_propagates_with_other_slots_intact() {
    let p = sanitized_pool();
    let slots: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
    let claims: Vec<sanitize::SlotClaim> = (0..4).map(|i| (i, i..i + 1)).collect();
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
        .map(|i| {
            let slots = &slots;
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                if i == 2 {
                    panic!("chunk 2 goes down");
                }
                slots[i].store(i + 1, Ordering::SeqCst);
            });
            task
        })
        .collect();

    let r = catch_unwind(AssertUnwindSafe(|| {
        p.scope_run_claimed("panic_test", &claims, tasks)
    }));
    let err = r.expect_err("the middle chunk's panic must re-raise on the caller");
    let msg = err
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("chunk 2"), "panic payload carried: {msg:?}");

    // scope_run blocks on the whole batch before re-raising, so every other
    // chunk's slot write has landed.
    for (i, slot) in slots.iter().enumerate() {
        let expect = if i == 2 { 0 } else { i + 1 };
        assert_eq!(slot.load(Ordering::SeqCst), expect, "slot {i}");
    }

    // The pool survives a propagated panic and runs the next batch.
    let items: Vec<usize> = (0..64).collect();
    let doubled = p.par_map(&items, |&x| x * 2);
    assert_eq!(doubled[63], 126);
}

#[test]
fn overlapping_slot_claims_are_rejected_before_dispatch() {
    let p = sanitized_pool();
    let ran = AtomicUsize::new(0);
    // Chunks 1 and 2 both claim element 5 — the deliberate race seed.
    let claims: Vec<sanitize::SlotClaim> = vec![(0, 0..3), (1, 3..6), (2, 5..9)];
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3)
        .map(|_| {
            let ran = &ran;
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
            task
        })
        .collect();

    let r = catch_unwind(AssertUnwindSafe(|| {
        p.scope_run_claimed("overlap_test", &claims, tasks)
    }));
    let err = r.expect_err("overlapping claims must be rejected");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("overlap") && msg.contains("overlap_test"),
        "diagnostic names the batch and the defect: {msg:?}"
    );
    // The check runs on the submitting thread before dispatch: no task ran.
    assert_eq!(
        ran.load(Ordering::SeqCst),
        0,
        "no task may run after a claim overlap"
    );

    // The pool itself is untouched and usable.
    let items: Vec<usize> = (0..16).collect();
    assert_eq!(p.par_map(&items, |&x| x + 1)[0], 1);
}

#[test]
fn par_helpers_declare_clean_claims_under_sanitize() {
    // With sanitize forced on, par_map/par_chunks/par_ranges all build and
    // check their chunk claims; results must be exactly the sequential ones.
    let p = sanitized_pool();
    let items: Vec<u64> = (0..257).collect();
    let expect: Vec<u64> = items.iter().map(|&x| x * 7 + 1).collect();
    assert_eq!(p.par_map(&items, |&x| x * 7 + 1), expect);

    let mut chunk_sums = Vec::new();
    p.par_chunks(
        &items,
        32,
        |_, c| c.iter().sum::<u64>(),
        |s| chunk_sums.push(s),
    );
    assert_eq!(chunk_sums.iter().sum::<u64>(), items.iter().sum::<u64>());

    let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
    p.par_ranges(100, |r| {
        for i in r {
            hits[i].fetch_add(1, Ordering::SeqCst);
        }
    });
    assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
}
