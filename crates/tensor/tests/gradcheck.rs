//! Finite-difference gradient checks for every autograd op.
//!
//! For each op we build `loss = weighted_sum(op(inputs))` with fixed random
//! weights (so every output entry influences the scalar), then compare the
//! tape gradient of each input entry against the central finite difference.

use benchtemp_tensor::init::{self, SeededRng};
use benchtemp_tensor::tape::Var;
use benchtemp_tensor::{Matrix, Tape};

/// Builds the scalar loss for a given set of input values.
type Builder = dyn Fn(&mut Tape, &[Matrix]) -> (Vec<Var>, Var);

fn gradcheck(name: &str, inputs: &[Matrix], build: &Builder, tol: f32) {
    // Analytic gradients.
    let mut tape = Tape::new();
    let (vars, loss) = build(&mut tape, inputs);
    let grads = tape.backward(loss);
    let analytic: Vec<Matrix> = vars
        .iter()
        .map(|&v| grads.get_or_zero(v, tape.shape(v)))
        .collect();

    // Finite differences (f64-friendly epsilon for f32 math).
    let eps = 1e-2f32;
    for (which, input) in inputs.iter().enumerate() {
        for idx in 0..input.len() {
            let mut plus = inputs.to_vec();
            plus[which].as_mut_slice()[idx] += eps;
            let mut minus = inputs.to_vec();
            minus[which].as_mut_slice()[idx] -= eps;
            let f = |ins: &[Matrix]| {
                let mut t = Tape::new();
                let (_, l) = build(&mut t, ins);
                t.value(l).scalar()
            };
            let numeric = (f(&plus) - f(&minus)) / (2.0 * eps);
            let got = analytic[which].as_slice()[idx];
            let denom = numeric.abs().max(got.abs()).max(1.0);
            assert!(
                (numeric - got).abs() / denom <= tol,
                "{name}: input {which} entry {idx}: analytic {got} vs numeric {numeric}"
            );
        }
    }
}

/// Random weights to collapse a matrix output to a scalar.
fn weighted_sum(tape: &mut Tape, v: Var, rng: &mut SeededRng) -> Var {
    let (r, c) = tape.shape(v);
    let w = tape.leaf(init::uniform(r, c, 0.1, 1.0, rng));
    let prod = tape.mul(v, w);
    tape.sum_all(prod)
}

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    init::uniform(rows, cols, -1.0, 1.0, &mut init::rng(seed))
}

macro_rules! check_unary {
    ($test:ident, $method:ident, $input:expr) => {
        #[test]
        fn $test() {
            let input = $input;
            gradcheck(
                stringify!($method),
                &[input],
                &|t, ins| {
                    let x = t.leaf(ins[0].clone());
                    let y = t.$method(x);
                    let loss = weighted_sum(t, y, &mut init::rng(99));
                    (vec![x], loss)
                },
                2e-2,
            );
        }
    };
}

check_unary!(grad_sigmoid, sigmoid, mat(3, 4, 1));
check_unary!(grad_tanh, tanh, mat(3, 4, 2));
check_unary!(grad_exp, exp, mat(3, 4, 3));
check_unary!(grad_cos, cos, mat(3, 4, 4));
check_unary!(grad_neg, neg, mat(3, 4, 5));
check_unary!(grad_transpose, transpose, mat(3, 4, 6));
check_unary!(grad_softmax_rows, softmax_rows, mat(3, 4, 7));
check_unary!(grad_sum_all, sum_all, mat(3, 4, 8));
check_unary!(grad_mean_all, mean_all, mat(3, 4, 9));
check_unary!(grad_mean_rows, mean_rows, mat(3, 4, 10));
check_unary!(grad_sum_rows, sum_rows, mat(3, 4, 11));
check_unary!(grad_row_sums, row_sums, mat(3, 4, 12));

#[test]
fn grad_relu_away_from_kink() {
    // Shift inputs away from 0 where ReLU is non-differentiable.
    let mut input = mat(3, 4, 13);
    input.as_mut_slice().iter_mut().for_each(|x| {
        if x.abs() < 0.2 {
            *x += 0.5
        }
    });
    gradcheck(
        "relu",
        &[input],
        &|t, ins| {
            let x = t.leaf(ins[0].clone());
            let y = t.relu(x);
            let loss = weighted_sum(t, y, &mut init::rng(99));
            (vec![x], loss)
        },
        2e-2,
    );
}

#[test]
fn grad_ln_positive_inputs() {
    let input = init::uniform(3, 4, 0.5, 2.0, &mut init::rng(14));
    gradcheck(
        "ln",
        &[input],
        &|t, ins| {
            let x = t.leaf(ins[0].clone());
            let y = t.ln(x);
            let loss = weighted_sum(t, y, &mut init::rng(99));
            (vec![x], loss)
        },
        2e-2,
    );
}

macro_rules! check_binary {
    ($test:ident, $method:ident, $a:expr, $b:expr) => {
        #[test]
        fn $test() {
            gradcheck(
                stringify!($method),
                &[$a, $b],
                &|t, ins| {
                    let a = t.leaf(ins[0].clone());
                    let b = t.leaf(ins[1].clone());
                    let y = t.$method(a, b);
                    let loss = weighted_sum(t, y, &mut init::rng(99));
                    (vec![a, b], loss)
                },
                2e-2,
            );
        }
    };
}

check_binary!(grad_add, add, mat(3, 4, 20), mat(3, 4, 21));
check_binary!(grad_sub, sub, mat(3, 4, 22), mat(3, 4, 23));
check_binary!(grad_mul, mul, mat(3, 4, 24), mat(3, 4, 25));
check_binary!(grad_matmul, matmul, mat(3, 4, 26), mat(4, 2, 27));
check_binary!(grad_concat_cols, concat_cols, mat(3, 2, 28), mat(3, 3, 29));
check_binary!(grad_concat_rows, concat_rows, mat(2, 3, 30), mat(4, 3, 31));
check_binary!(
    grad_add_row_broadcast,
    add_row_broadcast,
    mat(3, 4, 32),
    mat(1, 4, 33)
);
check_binary!(
    grad_mul_col_broadcast,
    mul_col_broadcast,
    mat(3, 4, 34),
    mat(3, 1, 35)
);

#[test]
fn grad_scale_and_add_scalar() {
    gradcheck(
        "scale+add_scalar",
        &[mat(3, 3, 40)],
        &|t, ins| {
            let x = t.leaf(ins[0].clone());
            let y = t.scale(x, 2.5);
            let z = t.add_scalar(y, -0.3);
            let loss = weighted_sum(t, z, &mut init::rng(99));
            (vec![x], loss)
        },
        2e-2,
    );
}

#[test]
fn grad_gather_rows_with_repeats() {
    gradcheck(
        "gather_rows",
        &[mat(4, 3, 41)],
        &|t, ins| {
            let x = t.leaf(ins[0].clone());
            let y = t.gather_rows(x, &[0, 2, 2, 3]);
            let loss = weighted_sum(t, y, &mut init::rng(99));
            (vec![x], loss)
        },
        2e-2,
    );
}

#[test]
fn grad_slice_cols() {
    gradcheck(
        "slice_cols",
        &[mat(3, 5, 42)],
        &|t, ins| {
            let x = t.leaf(ins[0].clone());
            let y = t.slice_cols(x, 1, 4);
            let loss = weighted_sum(t, y, &mut init::rng(99));
            (vec![x], loss)
        },
        2e-2,
    );
}

#[test]
fn grad_bce_with_logits() {
    gradcheck(
        "bce_with_logits",
        &[mat(5, 1, 43)],
        &|t, ins| {
            let x = t.leaf(ins[0].clone());
            let loss = t.bce_with_logits(x, &[1.0, 0.0, 1.0, 0.0, 1.0]);
            (vec![x], loss)
        },
        2e-2,
    );
}

#[test]
fn grad_softmax_cross_entropy() {
    gradcheck(
        "softmax_cross_entropy",
        &[mat(4, 3, 44)],
        &|t, ins| {
            let x = t.leaf(ins[0].clone());
            let loss = t.softmax_cross_entropy(x, &[0, 2, 1, 2]);
            (vec![x], loss)
        },
        2e-2,
    );
}

#[test]
fn grad_grouped_attention() {
    // 2 queries, group of 3, one masked slot.
    let q = mat(2, 4, 45);
    let k = mat(6, 4, 46);
    let v = mat(6, 3, 47);
    let mask = vec![true, true, false, true, true, true];
    gradcheck(
        "grouped_attention",
        &[q, k, v],
        &move |t, ins| {
            let q = t.leaf(ins[0].clone());
            let k = t.leaf(ins[1].clone());
            let v = t.leaf(ins[2].clone());
            let y = t.grouped_attention(q, k, v, 3, &mask);
            let loss = weighted_sum(t, y, &mut init::rng(99));
            (vec![q, k, v], loss)
        },
        3e-2,
    );
}

#[test]
fn grad_multi_head_grouped_attention() {
    // 3 queries, 2 heads over model dim 8, group of 3, one fully-masked row.
    let q = mat(3, 8, 48);
    let k = mat(9, 8, 49);
    let v = mat(9, 8, 55);
    let mut mask = vec![true; 9];
    mask[2] = false; // padded slot in row 0
    mask[3..6].fill(false); // row 1 entirely padded
    gradcheck(
        "multi_head_grouped_attention",
        &[q, k, v],
        &move |t, ins| {
            let q = t.leaf(ins[0].clone());
            let k = t.leaf(ins[1].clone());
            let v = t.leaf(ins[2].clone());
            let y = t.multi_head_grouped_attention(q, k, v, 2, 3, &mask);
            let loss = weighted_sum(t, y, &mut init::rng(99));
            (vec![q, k, v], loss)
        },
        3e-2,
    );
}

#[test]
fn grad_slice_rows() {
    gradcheck(
        "slice_rows",
        &[mat(5, 3, 56)],
        &|t, ins| {
            let x = t.leaf(ins[0].clone());
            let y = t.slice_rows(x, 1, 4);
            let loss = weighted_sum(t, y, &mut init::rng(99));
            (vec![x], loss)
        },
        2e-2,
    );
}

#[test]
fn grad_composite_expression() {
    // A deeper graph mixing many ops: tanh(A·B + bias) ⊙ sigmoid(A) pooled.
    let a = mat(3, 3, 50);
    let b = mat(3, 3, 51);
    let bias = mat(1, 3, 52);
    gradcheck(
        "composite",
        &[a, b, bias],
        &|t, ins| {
            let a = t.leaf(ins[0].clone());
            let b = t.leaf(ins[1].clone());
            let bias = t.leaf(ins[2].clone());
            let ab = t.matmul(a, b);
            let pre = t.add_row_broadcast(ab, bias);
            let th = t.tanh(pre);
            let sg = t.sigmoid(a);
            let prod = t.mul(th, sg);
            let pooled = t.mean_rows(prod);
            let loss = weighted_sum(t, pooled, &mut init::rng(99));
            (vec![a, b, bias], loss)
        },
        2e-2,
    );
}

#[test]
fn grad_reused_variable_accumulates() {
    // x used twice: loss = sum(x ⊙ x) → grad must be 2x.
    let x = mat(3, 3, 53);
    let mut tape = Tape::new();
    let xv = tape.leaf(x.clone());
    let prod = tape.mul(xv, xv);
    let loss = tape.sum_all(prod);
    let grads = tape.backward(loss);
    let g = grads.get(xv).unwrap();
    let expected = x.map(|v| 2.0 * v);
    assert!(g.approx_eq(&expected, 1e-5), "grad of x·x should be 2x");
}

#[test]
fn grad_untouched_leaf_is_none() {
    let mut tape = Tape::new();
    let a = tape.leaf(Matrix::full(1, 1, 1.0));
    let b = tape.leaf(Matrix::full(1, 1, 2.0));
    let loss = tape.sum_all(a);
    let grads = tape.backward(loss);
    assert!(grads.get(b).is_none());
    assert!(grads.get(a).is_some());
}

#[test]
fn grad_dropout_scales_by_mask() {
    // keep = 1.0 → identity (deterministic); gradient passes through.
    let mut tape = Tape::new();
    let x = tape.leaf(mat(3, 3, 54));
    let mut fake = || 0.0f32;
    let y = tape.dropout(x, 1.0, &mut fake);
    let loss = tape.sum_all(y);
    let grads = tape.backward(loss);
    assert!(grads
        .get(x)
        .unwrap()
        .approx_eq(&Matrix::full(3, 3, 1.0), 1e-6));
}
