//! Zero-allocation contract of the steady-state training forward pass:
//! once the tape recycle cache and its shape-keyed buffer pool are warm,
//! building a [`Graph`], binding parameters, and running a fused
//! `Linear→ReLU→Linear` forward must perform no heap allocations at all.
//!
//! Verified with a counting global allocator. This file holds exactly one
//! test so no sibling test thread can allocate concurrently and pollute the
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use benchtemp_tensor::nn::{Mlp, MultiHeadAttention};
use benchtemp_tensor::{init, Graph, Matrix, ParamStore};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System`, which upholds every GlobalAlloc
// contract; the only addition is an atomic counter bump, which allocates
// nothing and cannot unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's layout preconditions; delegated
    // verbatim to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    // SAFETY: `ptr`/`layout` come from a prior alloc on this same allocator
    // (we always delegate to `System`), so forwarding to `System.realloc`
    // preserves its contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: same delegation argument as `realloc` — every pointer we are
    // handed was produced by `System`, so `System.dealloc` may free it.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_forward_is_allocation_free_after_warmup() {
    let mut store = ParamStore::new();
    let mut rng = init::rng(11);
    let mlp = Mlp::new(&mut store, &mut rng, "steady", 8, 16, 4);
    let x = init::uniform(12, 8, -1.0, 1.0, &mut rng);

    // One forward step: graph from the recycle cache, pooled param/input
    // leaves, fused Linear→ReLU→Linear. Returns a checksum so the work
    // cannot be optimized away.
    let step = |store: &ParamStore, x: &Matrix| -> f32 {
        let mut g = Graph::new(store);
        let xv = g.input_from(x);
        let y = mlp.forward(&mut g, xv);
        g.value(y).as_slice().iter().sum()
    };

    // Warm-up passes grow the tape's node arena, the buffer pool's
    // per-shape free lists, and the binding scratch to their steady state.
    let mut warm = 0.0f32;
    for _ in 0..5 {
        warm += step(&store, &x);
    }
    assert!(
        warm.is_finite(),
        "warm-up forward produced non-finite output"
    );

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    let mut measured = 0.0f32;
    for _ in 0..10 {
        measured += step(&store, &x);
    }
    let after = ALLOC_CALLS.load(Ordering::SeqCst);
    assert!(measured.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state forward allocated {} times after warm-up",
        after - before
    );

    // TGAT-shaped attention steady state: the fused multi-head node's
    // output and its attention-weight scratch both come from the tape's
    // buffer pool, so a full Q/K/V-projected attention forward is also
    // allocation-free once warm. Shapes stay below the parallel dispatch
    // threshold so the kernel runs inline (no task boxing).
    let mut astore = ParamStore::new();
    let heads = 2;
    let group = 4;
    let n = 12;
    let attn = MultiHeadAttention::new(&mut astore, &mut rng, "att", 8, 8, 8, heads, 8);
    let query = init::uniform(n, 8, -1.0, 1.0, &mut rng);
    let keys = init::uniform(n * group, 8, -1.0, 1.0, &mut rng);
    let mut mask = vec![true; n * group];
    mask[..group].fill(false); // one fully-padded row
    let att_step = |store: &ParamStore, q: &Matrix, k: &Matrix, mask: &[bool]| -> f32 {
        let mut g = Graph::new(store);
        let qv = g.input_from(q);
        let kv = g.input_from(k);
        let y = attn.forward(&mut g, qv, kv, group, mask);
        g.value(y).as_slice().iter().sum()
    };
    let mut warm_att = 0.0f32;
    for _ in 0..5 {
        warm_att += att_step(&astore, &query, &keys, &mask);
    }
    assert!(warm_att.is_finite());

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    let mut measured_att = 0.0f32;
    for _ in 0..10 {
        measured_att += att_step(&astore, &query, &keys, &mask);
    }
    let after = ALLOC_CALLS.load(Ordering::SeqCst);
    assert!(measured_att.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state attention forward allocated {} times after warm-up",
        after - before
    );

    // Coalesced frontier gathers join the same contract: `gather_rows_from`
    // takes pool-granted storage and copies runs straight in, so a
    // gather-then-forward step is allocation-free once warm. The index list
    // is frontier-shaped (repeats, an ascending run, back-jumps) and small
    // enough to run inline below the parallel dispatch threshold.
    let table = init::uniform(40, 8, -1.0, 1.0, &mut rng);
    let mut idx: Vec<usize> = vec![7, 7, 7, 3, 0, 39, 12];
    idx.extend(20..25);
    let gather_step = |store: &ParamStore, table: &Matrix, idx: &[usize]| -> f32 {
        let mut g = Graph::new(store);
        let rows = g.gather_rows_from(table, idx);
        let y = mlp.forward(&mut g, rows);
        g.value(y).as_slice().iter().sum()
    };
    let mut warm_gather = 0.0f32;
    for _ in 0..5 {
        warm_gather += gather_step(&store, &table, &idx);
    }
    assert!(warm_gather.is_finite());

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    let mut measured_gather = 0.0f32;
    for _ in 0..10 {
        measured_gather += gather_step(&store, &table, &idx);
    }
    let after = ALLOC_CALLS.load(Ordering::SeqCst);
    assert!(measured_gather.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state gather+forward allocated {} times after warm-up",
        after - before
    );
}
