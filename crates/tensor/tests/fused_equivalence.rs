//! Bit-for-bit equivalence of the fused tape ops against the unfused
//! primitive chains they replace.
//!
//! `BENCHTEMP_FUSION` is a pure execution-strategy switch: every fused op
//! computes each output element with the same floating-point operation
//! order as its unfused composition, so forward values *and* gradients must
//! match exactly (`f32::to_bits`), not just approximately. These tests pin
//! that contract across a grid of shapes (1×1, ragged, large), every
//! activation, and the Δt-memoization fast path.
//!
//! `fusion::set_forced` is process-global, so every test flipping it holds
//! [`FUSION_LOCK`] for its whole body.

use std::sync::Mutex;

use benchtemp_tensor::nn::Mlp;
use benchtemp_tensor::tape::Activation;
use benchtemp_tensor::{fusion, init, Graph, Matrix, ParamStore, Tape};

static FUSION_LOCK: Mutex<()> = Mutex::new(());

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = init::rng(seed);
    init::uniform(rows, cols, -1.5, 1.5, &mut rng)
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

const ACTS: [Activation; 4] = [
    Activation::None,
    Activation::Relu,
    Activation::Sigmoid,
    Activation::Tanh,
];

/// One linear_affine forward+backward; returns (y, dx, dw, db) as bits.
fn run_linear(
    fused: bool,
    m: usize,
    k: usize,
    n: usize,
    act: Activation,
    seed: u64,
) -> [Vec<u32>; 4] {
    fusion::set_forced(Some(fused));
    let mut t = Tape::new();
    let x = t.leaf(mat(m, k, seed));
    let w = t.leaf(mat(k, n, seed + 1));
    let b = t.leaf(mat(1, n, seed + 2));
    let y = t.linear_affine(x, w, b, act);
    let loss = t.mean_all(y);
    let grads = t.backward(loss);
    let out = [
        bits(t.value(y)),
        bits(grads.get(x).expect("dx")),
        bits(grads.get(w).expect("dw")),
        bits(grads.get(b).expect("db")),
    ];
    fusion::set_forced(None);
    out
}

#[test]
fn linear_affine_matches_unfused_bitwise() {
    let _serial = FUSION_LOCK.lock().unwrap();
    // (batch m, in k, out n): degenerate, ragged, and large-enough-to-tile.
    let shapes = [(1, 1, 1), (3, 5, 7), (8, 9, 2), (17, 4, 13), (33, 16, 8)];
    for (i, &(m, k, n)) in shapes.iter().enumerate() {
        for (j, &act) in ACTS.iter().enumerate() {
            let seed = 100 + (i * ACTS.len() + j) as u64 * 3;
            let unfused = run_linear(false, m, k, n, act, seed);
            let fused = run_linear(true, m, k, n, act, seed);
            assert_eq!(
                unfused, fused,
                "linear_affine bits diverged at shape ({m},{k},{n}), act {act:?}"
            );
        }
    }
}

/// One time_encode forward+backward; returns (y, dω, dφ) as bits.
fn run_time_encode(fused: bool, dts: &[f32], d: usize, seed: u64) -> [Vec<u32>; 3] {
    fusion::set_forced(Some(fused));
    let mut t = Tape::new();
    let omega = t.leaf(mat(1, d, seed));
    let phase = t.leaf(mat(1, d, seed + 1));
    let y = t.time_encode_fused(dts, omega, phase);
    let loss = t.mean_all(y);
    let grads = t.backward(loss);
    let out = [
        bits(t.value(y)),
        bits(grads.get(omega).expect("domega")),
        bits(grads.get(phase).expect("dphase")),
    ];
    fusion::set_forced(None);
    out
}

#[test]
fn time_encode_fused_matches_unfused_bitwise() {
    let _serial = FUSION_LOCK.lock().unwrap();
    let mut rng = init::rng(7);
    let distinct: Vec<f32> = init::uniform(33, 1, 0.0, 50.0, &mut rng)
        .as_slice()
        .to_vec();
    // Duplicate-heavy batch: every Δt appears twice, so the fused path's
    // memo serves half the rows via row copy.
    let mut duplicated = distinct[..8].to_vec();
    duplicated.extend_from_slice(&distinct[..8]);
    let cases: Vec<(Vec<f32>, usize)> = vec![
        (vec![0.0], 1),
        (distinct[..7].to_vec(), 8),
        (distinct.clone(), 16),
        (duplicated, 8),
        (vec![3.25; 12], 5), // all rows identical: memo serves n-1 of n
    ];
    for (i, (dts, d)) in cases.iter().enumerate() {
        let seed = 500 + i as u64 * 11;
        let unfused = run_time_encode(false, dts, *d, seed);
        let fused = run_time_encode(true, dts, *d, seed);
        assert_eq!(
            unfused,
            fused,
            "time_encode bits diverged for case {i} (n={}, d={d})",
            dts.len()
        );
    }
}

#[test]
fn time_encode_memo_hits_on_duplicate_dts() {
    let _serial = FUSION_LOCK.lock().unwrap();
    let dts = vec![1.5f32; 16];
    let before = benchtemp_obs::counters::TIME_ENCODE_MEMO_HITS.get();
    let fused = run_time_encode(true, &dts, 4, 42);
    let after = benchtemp_obs::counters::TIME_ENCODE_MEMO_HITS.get();
    assert!(
        after - before >= 15,
        "memo should serve 15 of 16 identical rows (got {} hits)",
        after - before
    );
    let unfused = run_time_encode(false, &dts, 4, 42);
    assert_eq!(
        unfused, fused,
        "memoized rows diverged from recomputed rows"
    );

    // Duplicate-heavy mixed batch — the shape a frontier hop actually
    // produces (a few distinct Δt values, each repeated across slots, plus
    // padding zeros). The memo must fire (counter strictly increases) and
    // the memoized rows must still match the recomputed path bitwise.
    let mixed: Vec<f32> = (0..24)
        .map(|i| [0.0f32, 2.75, 0.0, 9.5, 2.75, 0.0][i % 6])
        .collect();
    let before = benchtemp_obs::counters::TIME_ENCODE_MEMO_HITS.get();
    let fused = run_time_encode(true, &mixed, 6, 43);
    let after = benchtemp_obs::counters::TIME_ENCODE_MEMO_HITS.get();
    assert!(
        after > before,
        "memo must register hits on a duplicate-heavy mixed batch"
    );
    let unfused = run_time_encode(false, &mixed, 6, 43);
    assert_eq!(
        unfused, fused,
        "memoized rows diverged from recomputed rows on the mixed batch"
    );
}

/// One multi-head grouped attention forward+backward; returns
/// (y, dq, dk, dv) as bits.
fn run_mha(
    fused: bool,
    n: usize,
    heads: usize,
    group: usize,
    model_dim: usize,
    mask: &[bool],
    seed: u64,
) -> [Vec<u32>; 4] {
    fusion::set_forced(Some(fused));
    let mut t = Tape::new();
    let q = t.leaf(mat(n, model_dim, seed));
    let k = t.leaf(mat(n * group, model_dim, seed + 1));
    let v = t.leaf(mat(n * group, model_dim, seed + 2));
    let y = t.multi_head_grouped_attention(q, k, v, heads, group, mask);
    let loss = t.mean_all(y);
    let grads = t.backward(loss);
    let out = [
        bits(t.value(y)),
        bits(grads.get(q).expect("dq")),
        bits(grads.get(k).expect("dk")),
        bits(grads.get(v).expect("dv")),
    ];
    fusion::set_forced(None);
    out
}

/// The fused multi-head node vs the per-head `slice_cols` →
/// `grouped_attention` → `concat_cols_many` chain it replaces, over a grid
/// of head counts, group sizes, and mask patterns — including rows whose
/// every neighbor slot is masked (the all-padded case), which must produce
/// a zero output row with zero gradient flow in both modes.
#[test]
fn multi_head_attention_matches_unfused_bitwise() {
    let _serial = FUSION_LOCK.lock().unwrap();
    // (n, heads, group, model_dim)
    let shapes = [
        (1, 1, 1, 4),
        (3, 1, 4, 8),
        (4, 2, 3, 8),
        (5, 4, 6, 16),
        (9, 2, 5, 12),
    ];
    for (i, &(n, heads, group, model_dim)) in shapes.iter().enumerate() {
        let slots = n * group;
        let full = vec![true; slots];
        // Every third slot padded out.
        let partial: Vec<bool> = (0..slots).map(|s| !s.is_multiple_of(3)).collect();
        // Whole rows fully masked (first and last query rows).
        let mut row_masked = vec![true; slots];
        row_masked[..group].fill(false);
        row_masked[slots - group..].fill(false);
        let all_masked = vec![false; slots];
        for (j, mask) in [full, partial, row_masked, all_masked].iter().enumerate() {
            let seed = 900 + (i * 4 + j) as u64 * 7;
            let unfused = run_mha(false, n, heads, group, model_dim, mask, seed);
            let fused = run_mha(true, n, heads, group, model_dim, mask, seed);
            assert_eq!(
                unfused, fused,
                "multi-head attention bits diverged at shape \
                 (n={n}, heads={heads}, group={group}, d={model_dim}), mask case {j}"
            );
        }
    }
}

/// Full model-shaped check: an MLP through [`Graph`] (param binding, fused
/// `Linear→ReLU→Linear`, BCE loss) must produce bit-identical loss and
/// per-parameter gradients with fusion on and off.
#[test]
fn mlp_graph_matches_unfused_bitwise() {
    let _serial = FUSION_LOCK.lock().unwrap();
    let run = |fused: bool| {
        fusion::set_forced(Some(fused));
        let mut store = ParamStore::new();
        let mut rng = init::rng(9);
        let mlp = Mlp::new(&mut store, &mut rng, "eq", 6, 16, 1);
        let x = mat(10, 6, 77);
        let targets: Vec<f32> = (0..10).map(|i| (i % 2) as f32).collect();
        let mut g = Graph::new(&store);
        let xv = g.input_from(&x);
        let logits = mlp.forward(&mut g, xv);
        let loss = g.bce_with_logits(logits, &targets);
        let loss_bits = bits(g.value(loss));
        let grads = g.backward(loss);
        let grad_bits: Vec<(usize, Vec<u32>)> =
            grads.iter().map(|(id, m)| (id.index(), bits(m))).collect();
        fusion::set_forced(None);
        (loss_bits, grad_bits)
    };
    assert_eq!(run(false), run(true), "MLP loss/grad bits diverged");
}
