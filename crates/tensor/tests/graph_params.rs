//! Tests for the Graph/ParamStore layer: parameter binding memoization,
//! gradient harvesting, snapshot/restore, and optimizer integration.

use benchtemp_tensor::init::{self, rng};
use benchtemp_tensor::nn::Linear;
use benchtemp_tensor::{Adam, Graph, Matrix, ParamStore};

#[test]
fn param_binding_is_memoized_and_gradients_accumulate() {
    let mut store = ParamStore::new();
    let w = store.add("w", Matrix::full(1, 1, 2.0));
    let mut g = Graph::new(&store);
    let w1 = g.param(w);
    let w2 = g.param(w);
    assert_eq!(w1, w2, "same ParamId must bind to the same Var");
    // loss = w * w → dL/dw = 2w = 4 (both uses accumulate through one leaf).
    let prod = g.mul(w1, w2);
    let loss = g.sum_all(prod);
    let grads = g.backward(loss);
    assert_eq!(grads.len(), 1);
    let (id, grad) = &grads[0];
    assert_eq!(*id, w);
    assert!((grad.scalar() - 4.0).abs() < 1e-6);
}

#[test]
fn bound_but_unused_param_gets_zero_gradient() {
    let mut store = ParamStore::new();
    let used = store.add("used", Matrix::full(1, 1, 1.0));
    let unused = store.add("unused", Matrix::full(2, 2, 1.0));
    let mut g = Graph::new(&store);
    let u = g.param(used);
    let _nu = g.param(unused); // bound, never touched by the loss
    let loss = g.sum_all(u);
    let grads = g.backward(loss);
    let zero = grads.iter().find(|(id, _)| *id == unused).unwrap();
    assert_eq!(zero.1, Matrix::zeros(2, 2));
}

#[test]
fn unbound_param_is_absent_from_gradients() {
    let mut store = ParamStore::new();
    let a = store.add("a", Matrix::full(1, 1, 1.0));
    let b = store.add("b", Matrix::full(1, 1, 1.0));
    let mut g = Graph::new(&store);
    let av = g.param(a);
    let loss = g.sum_all(av);
    let grads = g.backward(loss);
    assert!(grads.iter().all(|(id, _)| *id != b));
}

#[test]
fn snapshot_restore_round_trips_through_training() {
    let mut store = ParamStore::new();
    let mut r = rng(5);
    let lin = Linear::new(&mut store, &mut r, "lin", 4, 2);
    let before = store.snapshot();
    let mut adam = Adam::new(0.1);
    // A few noisy updates.
    for step in 0..5 {
        let mut g = Graph::new(&store);
        let x = g.input(init::randn(3, 4, 1.0, &mut rng(step)));
        let y = lin.forward(&mut g, x);
        let loss = g.mean_all(y);
        let grads = g.backward(loss);
        adam.step(&mut store, &grads);
    }
    assert_ne!(store.value(lin.w), &before[lin.w.index()]);
    store.restore(&before);
    assert_eq!(store.value(lin.w), &before[lin.w.index()]);
}

#[test]
fn heap_accounting_counts_values_and_moments() {
    let mut store = ParamStore::new();
    store.add("m", Matrix::zeros(10, 10));
    // value + Adam m + Adam v = 3 × 100 × 4 bytes
    assert_eq!(store.heap_bytes(), 3 * 100 * 4);
    assert_eq!(store.num_scalars(), 100);
}

#[test]
#[should_panic(expected = "snapshot size mismatch")]
fn restore_rejects_wrong_snapshot() {
    let mut store = ParamStore::new();
    store.add("a", Matrix::zeros(2, 2));
    store.restore(&[]);
}
