//! Cross-crate integration: the complete BenchTemp workflow through the
//! `benchtemp-suite` facade — dataset generation → DataLoader →
//! EdgeSampler → model training → Evaluator → Leaderboard — for several
//! model families at once.

use std::time::Duration;

use benchtemp_suite::core::dataloader::{LinkPredSplit, Setting};
use benchtemp_suite::core::leaderboard::Leaderboard;
use benchtemp_suite::core::pipeline::{train_link_prediction, TrainConfig};
use benchtemp_suite::graph::datasets::BenchDataset;
use benchtemp_suite::models::common::ModelConfig;
use benchtemp_suite::models::zoo;

fn train_cfg(seed: u64) -> TrainConfig {
    TrainConfig {
        batch_size: 100,
        max_epochs: 5,
        timeout: Duration::from_secs(300),
        seed,
        ..Default::default()
    }
}

#[test]
fn three_model_families_through_full_pipeline_and_leaderboard() {
    let graph = BenchDataset::Uci.config(0.006, 9).generate();
    assert_eq!(graph.validate(), Ok(()));
    let split = LinkPredSplit::new(&graph, 9);
    let mut lb = Leaderboard::new();

    for name in ["TGN", "NAT", "EdgeBank"] {
        let mut model = zoo::build(
            name,
            ModelConfig {
                embed_dim: 24,
                seed: 9,
                ..Default::default()
            },
            &graph,
        );
        let run = train_link_prediction(model.as_mut(), &graph, &split, &train_cfg(9));
        assert!(
            run.transductive.auc > 0.55,
            "{name} transductive AUC {:.4}",
            run.transductive.auc
        );
        for setting in Setting::all() {
            lb.push_runs(
                name,
                &graph.name,
                "lp",
                setting.name(),
                "AUC",
                &[run.metrics_for(setting).auc],
            );
        }
    }

    let group = lb.group(&graph.name, "lp", "Transductive", "AUC");
    assert_eq!(group.len(), 3);
    // The ranking is strictly ordered.
    assert!(group.windows(2).all(|w| w[0].mean >= w[1].mean));
}

#[test]
fn full_run_is_deterministic_per_seed() {
    let graph = BenchDataset::CollegeMsg.config(0.006, 4).generate();
    let split = LinkPredSplit::new(&graph, 4);
    let run_once = || {
        let mut model = zoo::build(
            "TGN",
            ModelConfig {
                embed_dim: 24,
                seed: 4,
                ..Default::default()
            },
            &graph,
        );
        train_link_prediction(model.as_mut(), &graph, &split, &train_cfg(4))
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.transductive.auc, b.transductive.auc);
    assert_eq!(a.epoch_losses, b.epoch_losses);
    assert_eq!(a.val_aps, b.val_aps);
}

#[test]
fn different_seeds_differ_but_agree_qualitatively() {
    let mut aucs = Vec::new();
    for seed in 0..2u64 {
        let graph = BenchDataset::Enron.config(0.004, seed).generate();
        let split = LinkPredSplit::new(&graph, seed);
        let mut model = zoo::build(
            "NAT",
            ModelConfig {
                embed_dim: 24,
                seed,
                ..Default::default()
            },
            &graph,
        );
        let run = train_link_prediction(model.as_mut(), &graph, &split, &train_cfg(seed));
        aucs.push(run.transductive.auc);
    }
    assert_ne!(aucs[0], aucs[1], "seeds must vary the run");
    assert!(
        aucs.iter().all(|&a| a > 0.6),
        "both seeds should learn: {aucs:?}"
    );
}

#[test]
fn efficiency_report_is_fully_populated() {
    let graph = BenchDataset::UsLegis.config(0.006, 2).generate();
    let split = LinkPredSplit::new(&graph, 2);
    let mut model = zoo::build(
        "TGN",
        ModelConfig {
            embed_dim: 24,
            seed: 2,
            ..Default::default()
        },
        &graph,
    );
    let run = train_link_prediction(model.as_mut(), &graph, &split, &train_cfg(2));
    let e = &run.efficiency;
    assert!(e.runtime_per_epoch_secs > 0.0);
    assert!(e.epochs_to_converge >= 1);
    if let Some(rss) = e.peak_rss_bytes {
        assert!(rss > 1_000_000, "peak RSS should be MBs");
    } else if cfg!(target_os = "linux") {
        panic!("VmHWM should exist on linux");
    }
    assert!(e.model_state_bytes > 10_000, "params + memory");
    assert!(e.inference_secs_per_100k > 0.0);
    assert!((0.0..=1.0).contains(&e.compute_utilization));
    assert!(!e.timed_out);
}

#[test]
fn timeout_is_honored_and_marked() {
    let graph = BenchDataset::Contact.config(0.002, 3).generate();
    let split = LinkPredSplit::new(&graph, 3);
    let mut model = zoo::build(
        "CAWN", // the slow one, as in Table 4
        ModelConfig {
            seed: 3,
            ..Default::default()
        },
        &graph,
    );
    let cfg = TrainConfig {
        timeout: Duration::from_millis(200),
        max_epochs: 50,
        seed: 3,
        ..Default::default()
    };
    let run = train_link_prediction(model.as_mut(), &graph, &split, &cfg);
    assert!(run.efficiency.timed_out, "200ms must time out on Contact");
    // Timed-out runs still report whatever was measured (the paper keeps
    // one-epoch numbers with std 0).
    assert!(run.epoch_losses.len() <= 2);
}
