//! Shape checks against the paper's headline findings — not absolute
//! numbers (our substrate is a CPU simulator on synthetic data), but the
//! qualitative statements §4.2/§4.4 draw:
//!
//! 1. walk-based / joint-neighborhood models (CAWN, NAT) generalize better
//!    than the memory family (TGN) on inductive New-New edges;
//! 2. walk-based models pay for it in runtime (CAWN ≫ TGN per epoch);
//! 3. NAT is fast despite being structure-aware (the N-cache trade-off);
//! 4. the NeurTW NODE component matters on coarse-granularity streams.

use std::time::Duration;

use benchtemp_suite::core::dataloader::LinkPredSplit;
use benchtemp_suite::core::pipeline::{train_link_prediction, LinkPredictionRun, TrainConfig};
use benchtemp_suite::graph::datasets::BenchDataset;
use benchtemp_suite::models::common::ModelConfig;
use benchtemp_suite::models::zoo;

fn run(name: &str, dataset: BenchDataset, scale: f64, seed: u64) -> LinkPredictionRun {
    let graph = dataset.config(scale, seed ^ 0xda7a).generate();
    let split = LinkPredSplit::new(&graph, seed);
    let mut model = zoo::build(
        name,
        ModelConfig {
            seed,
            ..Default::default()
        },
        &graph,
    );
    let cfg = TrainConfig {
        batch_size: 100,
        max_epochs: 6,
        timeout: Duration::from_secs(300),
        seed,
        ..Default::default()
    };
    train_link_prediction(model.as_mut(), &graph, &split, &cfg)
}

/// Mean over two seeds to damp noise.
fn mean2(name: &str, dataset: BenchDataset, f: impl Fn(&LinkPredictionRun) -> f64) -> f64 {
    mean2s(name, dataset, 0.004, f)
}

fn mean2s(
    name: &str,
    dataset: BenchDataset,
    scale: f64,
    f: impl Fn(&LinkPredictionRun) -> f64,
) -> f64 {
    (f(&run(name, dataset, scale, 0)) + f(&run(name, dataset, scale, 1))) / 2.0
}

#[test]
fn structure_aware_models_win_new_new() {
    // Table 3 Inductive New-New: NAT/CAWN top-2 on most datasets while the
    // memory family degrades hard. MOOC has enough nodes at this scale to
    // yield a real New-New test set under both seeds.
    let ds = BenchDataset::Mooc;
    let scale = 0.008;
    let probe = run("NAT", ds, scale, 0);
    assert!(
        probe.new_new.n_edges > 0,
        "need New-New edges for this check"
    );
    let nat = mean2s("NAT", ds, scale, |r| r.new_new.auc);
    let tgn = mean2s("TGN", ds, scale, |r| r.new_new.auc);
    assert!(
        nat > tgn + 0.05,
        "NAT ({nat:.4}) should clearly beat TGN ({tgn:.4}) on New-New"
    );
}

#[test]
fn walk_models_are_slower_per_epoch_than_memory_models() {
    // Table 4: CAWN runtime ≫ JODIE/TGN runtime on every dataset.
    let ds = BenchDataset::Wikipedia;
    let cawn = mean2("CAWN", ds, |r| r.efficiency.runtime_per_epoch_secs);
    let jodie = mean2("JODIE", ds, |r| r.efficiency.runtime_per_epoch_secs);
    assert!(
        cawn > 1.5 * jodie,
        "CAWN ({cawn:.3}s) should be well slower than JODIE ({jodie:.3}s) per epoch"
    );
}

#[test]
fn nat_is_faster_than_walk_models() {
    // §4.2: "NAT is relatively faster than temporal walk-based methods
    // through caching", Table 4 runtime column.
    let ds = BenchDataset::Enron;
    let nat = mean2("NAT", ds, |r| r.efficiency.runtime_per_epoch_secs);
    let neurtw = mean2("NeurTW", ds, |r| r.efficiency.runtime_per_epoch_secs);
    assert!(
        neurtw > 1.5 * nat,
        "NeurTW ({neurtw:.3}s) should be well slower than NAT ({nat:.3}s)"
    );
}

#[test]
fn neurtw_nodes_help_on_coarse_granularity() {
    // Table 23: removing NODEs hurts on CanParl (yearly session ticks),
    // where edge freshness is the discriminative temporal signal. The
    // clearest contrast at small scale is the inductive setting; we assert
    // direction with a noise margin (see EXPERIMENTS.md for the calibrated
    // multi-seed numbers).
    let with = mean2("NeurTW", BenchDataset::CanParl, |r| r.inductive.auc);
    let without = mean2("NeurTW-noNODE", BenchDataset::CanParl, |r| r.inductive.auc);
    assert!(
        with + 0.05 > without,
        "NODEs should not hurt CanParl inductive: with {with:.4} vs without {without:.4}"
    );
}

#[test]
fn memory_state_scales_with_node_count() {
    // Table 4 GPU-memory discussion: on Taobao (the max node count) the
    // Memory module's footprint dominates — memory-based TGN carries far
    // more state than stateless TGAT, while on tiny Enron the two are
    // parameter-bound and close. Pure state accounting, no training needed.
    let state = |name: &str, ds: BenchDataset, scale: f64| {
        let g = ds.config(scale, 0).generate();
        let m = zoo::build(
            name,
            ModelConfig {
                seed: 0,
                ..Default::default()
            },
            &g,
        );
        m.state_bytes() as f64
    };
    let ratio_taobao =
        state("TGN", BenchDataset::Taobao, 0.01) / state("TGAT", BenchDataset::Taobao, 0.01);
    let ratio_enron =
        state("TGN", BenchDataset::Enron, 0.01) / state("TGAT", BenchDataset::Enron, 0.01);
    assert!(
        ratio_taobao > 1.5,
        "TGN/TGAT state ratio on Taobao should exceed 1.5, got {ratio_taobao:.2}"
    );
    assert!(
        ratio_taobao > 1.2 * ratio_enron,
        "the memory blow-up must be Taobao-specific: {ratio_taobao:.2} vs {ratio_enron:.2}"
    );
}
