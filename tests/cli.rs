//! End-to-end tests of the `benchtemp` CLI binary: generate → stats →
//! train → leaderboard, exercising dataset IO and the leaderboard file
//! format through the real executable.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_benchtemp"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("benchtemp_cli_{name}_{}", std::process::id()))
}

#[test]
fn generate_stats_train_leaderboard_round_trip() {
    let data = tmp("data");
    let lb = tmp("lb.json");

    // generate
    let out = cli()
        .args([
            "generate",
            "--dataset",
            "Enron",
            "--scale",
            "0.004",
            "--seed",
            "3",
        ])
        .args(["--out", data.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(data.join("edges.csv").exists());
    assert!(data.join("meta.json").exists());

    // stats on the saved dataset
    let out = cli()
        .args(["stats", "--dir", data.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Enron"), "{text}");
    assert!(text.contains("recurrence"));

    // train on the saved dataset, push to a leaderboard file
    let out = cli()
        .args(["train", "--dir", data.to_str().unwrap()])
        .args(["--model", "EdgeBank", "--epochs", "3", "--seed", "1"])
        .args(["--leaderboard", lb.to_str().unwrap()])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Transductive"), "{text}");
    assert!(lb.exists());

    // leaderboard renders the pushed entry
    let out = cli()
        .args(["leaderboard", "--file", lb.to_str().unwrap()])
        .output()
        .expect("run leaderboard");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("EdgeBank"), "{text}");

    std::fs::remove_dir_all(&data).ok();
    std::fs::remove_file(&lb).ok();
}

#[test]
fn unknown_dataset_fails_with_message() {
    let out = cli()
        .args(["stats", "--dataset", "NotADataset"])
        .output()
        .expect("run stats");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
}

#[test]
fn unknown_model_fails_with_message() {
    let out = cli()
        .args(["train", "--dataset", "UCI", "--model", "GPT-TGNN"])
        .output()
        .expect("run train");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown model"));
}

#[test]
fn help_lists_commands() {
    let out = cli().arg("help").output().expect("run help");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["generate", "stats", "train", "leaderboard"] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn models_and_datasets_listings() {
    let out = cli().arg("models").output().expect("run models");
    assert!(String::from_utf8_lossy(&out.stdout).contains("NeurTW"));
    let out = cli().arg("datasets").output().expect("run datasets");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SocialEvo"));
    assert!(text.contains("[labelled]"));
}
