#!/bin/bash
# Regenerate every table/figure of the paper. Run after `cargo build --release`.
# Each harness accepts --scale/--seeds/--epochs/...; these are the defaults
# used for the recorded EXPERIMENTS.md numbers.
set -x
cd "$(dirname "$0")"
source ./ci.sh
BIN="cargo run -q --release -p benchtemp-bench --bin"
$BIN bench_kernels             > results/bench_kernels.txt        2>/dev/null
$BIN anatomy                   > results/anatomy.txt              2>/dev/null
$BIN table2_stats              > results/table2_stats.txt         2>/dev/null
$BIN table6_splits             > results/table6_splits.txt        2>/dev/null
$BIN fig5_temporal_dist        > results/fig5_temporal_dist.txt   2>/dev/null
$BIN table5_nc -- --seeds 3 > results/table5_nc.txt 2>results/table5_nc.log
$BIN fig2_feature_dims -- --seeds 2 > results/fig2_feature_dims.txt 2>results/fig2.log
$BIN temp_results -- --seeds 2 > results/temp_results.txt 2>results/temp.log
$BIN table17_new_datasets -- --scale 0.001 --seeds 2 > results/table17_new_datasets.txt 2>results/table17.log
$BIN table19_ebay_nc -- --seeds 2 > results/table19_ebay_nc.txt 2>results/table19.log
$BIN table22_multilabel -- --scale 0.001 --seeds 2 > results/table22_multilabel.txt 2>results/table22.log
$BIN table23_nodes_ablation -- --seeds 3 > results/table23_nodes_ablation.txt 2>results/table23.log
$BIN table25_density -- --seeds 3 > results/table25_density.txt   2>results/table25.log
$BIN table26_negative_sampling -- --seeds 3 > results/table26_negative_sampling.txt 2>results/table26.log
echo ALL_EXPERIMENTS_DONE
