//! `benchtemp` — command-line front end to the benchmark suite.
//!
//! ```text
//! benchtemp generate --dataset MOOC --scale 0.01 --seed 42 --out data/mooc
//! benchtemp stats    --dir data/mooc            # or --dataset MOOC
//! benchtemp train    --dataset MOOC --model TGN --task lp
//! benchtemp train    --dir data/mooc --model CAWN --task lp
//! benchtemp leaderboard --file results/leaderboard.json
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use benchtemp_core::dataloader::{LinkPredSplit, Setting};
use benchtemp_core::leaderboard::Leaderboard;
use benchtemp_core::pipeline::{train_link_prediction, train_node_classification, TrainConfig};
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_graph::io::{load_dataset, save_dataset};
use benchtemp_graph::stats::{sparkline, temporal_histogram, DatasetStats};
use benchtemp_graph::TemporalGraph;
use benchtemp_models::common::ModelConfig;
use benchtemp_models::zoo;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "stats" => cmd_stats(&flags),
        "train" => cmd_train(&flags),
        "leaderboard" => cmd_leaderboard(&flags),
        "models" => {
            println!("available models: {}", zoo::ALL_MODELS.join(", "));
            Ok(())
        }
        "datasets" => {
            for d in BenchDataset::all15()
                .into_iter()
                .chain(BenchDataset::new6())
            {
                let p = d.paper_stats();
                println!(
                    "{:<22} {:<12} paper: {} nodes / {} edges{}",
                    d.name(),
                    p.domain,
                    p.nodes,
                    p.edges,
                    if d.label_classes().is_some() {
                        "  [labelled]"
                    } else {
                        ""
                    }
                );
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "benchtemp — a general benchmark for temporal graph neural networks

USAGE:
  benchtemp generate  --dataset NAME [--scale F] [--seed N] --out DIR
  benchtemp stats     (--dataset NAME [--scale F] | --dir DIR)
  benchtemp train     (--dataset NAME [--scale F] | --dir DIR) --model NAME
                      [--task lp|nc] [--seed N] [--epochs N] [--batch N]
                      [--timeout-secs N] [--rank-negs K] [--leaderboard FILE]
  benchtemp leaderboard --file FILE [--dataset NAME] [--setting NAME]
                      [--metric AUC|AP|MRR|Hits@1|Hits@3|Hits@10]
  benchtemp models | datasets | help";

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            flags.insert(key.to_string(), value);
            i += 2;
        } else {
            i += 1;
        }
    }
    flags
}

fn flag<'a>(flags: &'a HashMap<String, String>, key: &str) -> Option<&'a str> {
    flags.get(key).map(String::as_str).filter(|s| !s.is_empty())
}

fn find_dataset(name: &str) -> Result<BenchDataset, String> {
    BenchDataset::all15()
        .into_iter()
        .chain(BenchDataset::new6())
        .find(|d| d.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown dataset {name:?}; run `benchtemp datasets`"))
}

/// Resolve a graph from `--dataset` (generated) or `--dir` (loaded).
fn resolve_graph(flags: &HashMap<String, String>) -> Result<TemporalGraph, String> {
    match (flag(flags, "dataset"), flag(flags, "dir")) {
        (Some(name), None) => {
            let scale: f64 = flag(flags, "scale")
                .unwrap_or("0.005")
                .parse()
                .map_err(|_| "--scale")?;
            let seed: u64 = flag(flags, "seed")
                .unwrap_or("42")
                .parse()
                .map_err(|_| "--seed")?;
            Ok(find_dataset(name)?.config(scale, seed).generate())
        }
        (None, Some(dir)) => load_dataset(Path::new(dir)).map_err(|e| e.to_string()),
        _ => Err("pass exactly one of --dataset NAME or --dir DIR".into()),
    }
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = flag(flags, "out").ok_or("--out DIR is required")?;
    let graph = resolve_graph(flags)?;
    save_dataset(&graph, Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} nodes, {} events) to {out}",
        graph.name,
        graph.num_nodes,
        graph.num_events()
    );
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let graph = resolve_graph(flags)?;
    let s = DatasetStats::compute(&graph);
    println!("dataset          {}", s.name);
    println!(
        "kind             {}",
        if s.bipartite {
            "heterogeneous (bipartite)"
        } else {
            "homogeneous"
        }
    );
    println!("nodes            {}", s.num_nodes);
    println!("edges            {}", s.num_edges);
    println!("avg degree       {:.2}", s.avg_degree);
    println!("edge density     {:.4}", s.edge_density);
    println!("distinct edges   {}", s.distinct_edges);
    println!("recurrence       {:.3}", s.recurrence_ratio);
    println!(
        "time span        {:.1} ({} distinct timestamps)",
        s.time_span, s.distinct_timestamps
    );
    if let Some(labels) = &graph.labels {
        println!(
            "labels           {} classes, rates {:?}",
            labels.num_classes,
            labels
                .class_rates()
                .iter()
                .map(|r| format!("{r:.3}"))
                .collect::<Vec<_>>()
        );
    }
    println!(
        "temporal profile {}",
        sparkline(&temporal_histogram(&graph, 60))
    );
    Ok(())
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let graph = resolve_graph(flags)?;
    let model_name = flag(flags, "model").ok_or("--model NAME is required")?;
    if !zoo::ALL_MODELS.contains(&model_name) {
        return Err(format!(
            "unknown model {model_name:?}; run `benchtemp models`"
        ));
    }
    let seed: u64 = flag(flags, "seed")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "--seed")?;
    let cfg = TrainConfig {
        batch_size: flag(flags, "batch")
            .unwrap_or("100")
            .parse()
            .map_err(|_| "--batch")?,
        max_epochs: flag(flags, "epochs")
            .unwrap_or("10")
            .parse()
            .map_err(|_| "--epochs")?,
        timeout: Duration::from_secs(
            flag(flags, "timeout-secs")
                .unwrap_or("600")
                .parse()
                .map_err(|_| "--timeout-secs")?,
        ),
        seed,
        rank_negatives: flag(flags, "rank-negs")
            .unwrap_or("20")
            .parse()
            .map_err(|_| "--rank-negs")?,
        ..Default::default()
    };
    let mut model = zoo::build(
        model_name,
        ModelConfig {
            seed,
            ..Default::default()
        },
        &graph,
    );

    match flag(flags, "task").unwrap_or("lp") {
        "lp" => {
            let split = LinkPredSplit::new(&graph, seed);
            let run = train_link_prediction(model.as_mut(), &graph, &split, &cfg);
            println!("{model_name} on {} (link prediction):", graph.name);
            for setting in Setting::all() {
                let m = run.metrics_for(setting);
                match &m.ranking {
                    Some(r) => println!(
                        "  {:<20} AUC {:.4}  AP {:.4}  MRR {:.4}  Hits@1/3/10 {:.3}/{:.3}/{:.3}  ({} edges)",
                        setting.name(),
                        m.auc,
                        m.ap,
                        r.mrr,
                        r.hits_at_1,
                        r.hits_at_3,
                        r.hits_at_10,
                        m.n_edges
                    ),
                    None => println!(
                        "  {:<20} AUC {:.4}  AP {:.4}  ({} edges)",
                        setting.name(),
                        m.auc,
                        m.ap,
                        m.n_edges
                    ),
                }
            }
            println!(
                "  {:.2}s/epoch, {} epochs, state {:.2} MB, util {:.0}%",
                run.efficiency.runtime_per_epoch_secs,
                run.efficiency.epochs_to_converge,
                run.efficiency.model_state_bytes as f64 / 1e6,
                run.efficiency.compute_utilization * 100.0
            );
            if let Some(file) = flag(flags, "leaderboard") {
                let path = PathBuf::from(file);
                let mut lb = Leaderboard::load(&path).map_err(|e| e.to_string())?;
                for setting in Setting::all() {
                    let m = run.metrics_for(setting);
                    let mut metrics = vec![("AUC", m.auc), ("AP", m.ap)];
                    if let Some(r) = &m.ranking {
                        metrics.extend([
                            ("MRR", r.mrr),
                            ("Hits@1", r.hits_at_1),
                            ("Hits@3", r.hits_at_3),
                            ("Hits@10", r.hits_at_10),
                        ]);
                    }
                    for (name, value) in metrics {
                        lb.push_runs(
                            model_name,
                            &graph.name,
                            "link_prediction",
                            setting.name(),
                            name,
                            &[value],
                        );
                    }
                }
                lb.save(&path).map_err(|e| e.to_string())?;
                println!("  pushed to {}", path.display());
            }
        }
        "nc" => {
            if graph.labels.is_none() {
                return Err(format!(
                    "{} has no node labels; use a labelled dataset",
                    graph.name
                ));
            }
            let split = LinkPredSplit::new(&graph, seed);
            let _ = train_link_prediction(model.as_mut(), &graph, &split, &cfg);
            let run = train_node_classification(model.as_mut(), &graph, &cfg);
            println!("{model_name} on {} (node classification):", graph.name);
            match run.multiclass {
                None => println!("  test ROC AUC {:.4}", run.auc),
                Some(m) => println!(
                    "  accuracy {:.4}  P {:.4}  R {:.4}  F1 {:.4} (weighted)",
                    m.accuracy, m.precision_weighted, m.recall_weighted, m.f1_weighted
                ),
            }
        }
        other => return Err(format!("unknown task {other:?} (lp | nc)")),
    }
    Ok(())
}

fn cmd_leaderboard(flags: &HashMap<String, String>) -> Result<(), String> {
    let file = flag(flags, "file").ok_or("--file FILE is required")?;
    let lb = Leaderboard::load(Path::new(file)).map_err(|e| e.to_string())?;
    if lb.is_empty() {
        println!("(leaderboard is empty)");
        return Ok(());
    }
    let setting = flag(flags, "setting").unwrap_or("Transductive");
    let metric = flag(flags, "metric").unwrap_or("AUC");
    let datasets: Vec<String> = match flag(flags, "dataset") {
        Some(d) => vec![d.to_string()],
        None => {
            let mut v: Vec<String> = lb.entries().iter().map(|e| e.dataset.clone()).collect();
            v.sort();
            v.dedup();
            v
        }
    };
    for ds in &datasets {
        println!("\n--- {ds} / {setting} / {metric} ---");
        print!(
            "{}",
            lb.render_group(ds, "link_prediction", setting, metric)
        );
    }
    let refs: Vec<&str> = datasets.iter().map(String::as_str).collect();
    let ranks = lb.average_rank(&refs, "link_prediction", setting, metric);
    if !ranks.is_empty() {
        println!("\naverage rank: {ranks:?}");
    }
    Ok(())
}
