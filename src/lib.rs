pub use benchtemp_core as core;
pub use benchtemp_graph as graph;
pub use benchtemp_models as models;
pub use benchtemp_tensor as tensor;
